// Package opt is the timing-driven optimization engine: iterative
// critical-path gate sizing and long-wire buffer insertion, with
// incremental reroute and re-extraction of touched nets.
//
// Two modes matter for the paper's comparison. In the normal mode the
// optimizer co-optimizes against the *true* parasitics — which is what
// Macro-3D (and plain 2D) flows enjoy. In Frozen mode no sizing or
// buffering changes are allowed; S2D/C2D flows use it after tier
// partitioning, when the cells were already sized against the shrunk
// or scaled pseudo-design and the real double-stack parasitics only
// become visible afterwards (paper §III: over-/under-optimized paths
// cannot be fixed because the second routing cannot be co-optimized
// with placement).
package opt

import (
	"fmt"
	"os"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

// Context carries the live design state the optimizer mutates.
type Context struct {
	Design *netlist.Design
	DB     *route.DB
	Routes *route.Result
	Ex     *extract.Design

	Corner tech.CornerScale
	Clock  *cts.Tree

	// FP and RowHeight enable ECO placement: every resize that grows a
	// cell and every inserted buffer claims legal free space near its
	// target, so the optimized design stays physically legal. When FP
	// is nil edits are electrical-only (unit-test mode).
	FP        *floorplan.Floorplan
	RowHeight float64

	fs *place.FreeSpace
}

// Options tunes the loop.
type Options struct {
	// MaxIters bounds the sizing/buffering rounds (default 10).
	MaxIters int
	// MaxMovesPerIter bounds edits per round (default 24).
	MaxMovesPerIter int
	// BufferElmore is the per-arc Elmore delay (ps) above which a
	// buffer chain is inserted (default 120).
	BufferElmore float64
	// BufferSpan is the wire length one buffer drives, µm (default
	// 300).
	BufferSpan float64
	// FanoutCap is the driver load (fF) above which a decoupling
	// buffer is inserted between the driver and all its sinks
	// (default 90).
	FanoutCap float64
	// TargetPeriod stops optimization once MinPeriod ≤ target (0 =
	// optimize to the best achievable — max-performance mode).
	TargetPeriod float64
	// Frozen forbids all edits; Optimize only analyses.
	Frozen bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 250
	}
	if o.MaxMovesPerIter <= 0 {
		o.MaxMovesPerIter = 48
	}
	if o.BufferElmore <= 0 {
		o.BufferElmore = 90
	}
	if o.BufferSpan <= 0 {
		o.BufferSpan = 250
	}
	if o.FanoutCap <= 0 {
		o.FanoutCap = 90
	}
	return o
}

// Result wraps the final timing plus edit statistics.
type Result struct {
	Report   *sta.Report
	Resized  int
	Buffers  int
	Rerouted int
	Iters    int
}

// Optimize runs the loop until timing converges, the target is met, or
// the budget is spent.
func Optimize(ctx *Context, staOpt sta.Options, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	staOpt.Clock = ctx.Clock
	staOpt.Corner = ctx.Corner
	if staOpt.TopPaths == 0 {
		staOpt.TopPaths = 48
	}
	res := &Result{}

	period := opt.TargetPeriod
	if period <= 0 {
		period = 1e6
	}
	rep, err := sta.Analyze(ctx.Design, ctx.Ex, period, staOpt)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	if opt.Frozen {
		return res, nil
	}
	if ctx.FP != nil && ctx.RowHeight > 0 {
		ctx.fs = place.NewFreeSpace(ctx.Design, ctx.FP, ctx.RowHeight)
	}

	bufSeq := 0
	fanoutDone := map[int]bool{}
	chainDone := map[int]bool{}
	noResize := map[int]bool{}
	skipPath := map[string]bool{}
	stale := 0
	for it := 0; it < opt.MaxIters; it++ {
		if opt.TargetPeriod > 0 && rep.MinPeriod <= opt.TargetPeriod {
			break
		}
		moves := 0
		touched := map[int]bool{}    // net IDs needing re-extraction
		resizedNow := map[int]bool{} // instance IDs resized this iteration
		markedNow := []mark{}        // buffer markers set this iteration
		ck := checkpoint(ctx)

		// Work one path per iteration — the most critical one that is
		// not blocklisted and still has available edits — so
		// acceptance/rollback operates at path granularity.
		paths := rep.Paths
		if len(paths) == 0 {
			paths = []sta.Path{rep.Critical}
		}
		var curKey string
		for _, p := range paths {
			if moves >= opt.MaxMovesPerIter {
				break
			}
			k := pathKey(p)
			if skipPath[k] {
				continue
			}
			m := fixPath(ctx, res, p.Steps, opt, &bufSeq, touched,
				fanoutDone, chainDone, noResize, resizedNow, &markedNow,
				opt.MaxMovesPerIter-moves)
			if m > 0 && curKey == "" {
				curKey = k
			}
			moves += m
		}
		if moves == 0 {
			break
		}
		// Touched nets: rerouted (ECO moves shift pins) and re-extracted
		// in deterministic order.
		ids := make([]int, 0, len(touched))
		for id := range touched {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if id >= len(ctx.Routes.Routes) || ctx.Routes.Routes[id] == nil {
				continue
			}
			ctx.DB.ReleaseNet(ctx.Routes.Routes[id])
			r, err := ctx.DB.RouteNet(ctx.Design.Nets[id])
			if err != nil {
				return nil, err
			}
			ctx.Routes.SetRoute(id, r)
			ctx.Ex.Replace(id, extract.One(ctx.Design.Nets[id], r, ctx.DB, ctx.Corner))
		}
		res.Rerouted += len(touched)
		res.Iters = it + 1

		next, err := sta.Analyze(ctx.Design, ctx.Ex, period, staOpt)
		if err != nil {
			return nil, err
		}
		// Accept the iteration when the worst path improved or, on a
		// multi-path plateau, when the aggregate of the near-critical
		// paths improved. Otherwise roll back (the edit markers stay,
		// so failed edits are not retried).
		improvedWorst := next.MinPeriod < rep.MinPeriod-0.5
		improvedSum := pathScore(next) < pathScore(rep)-0.5
		if !improvedWorst && !improvedSum {
			rollback(ctx, ck)
			if ctx.FP != nil && ctx.RowHeight > 0 {
				ctx.fs = place.NewFreeSpace(ctx.Design, ctx.FP, ctx.RowHeight)
			}
			// Clear this iteration's buffer markers (the edits were
			// undone and may succeed in a different bundle), but
			// blocklist the path so the identical bundle is not
			// retried immediately.
			for _, m := range markedNow {
				if m.chain {
					delete(chainDone, m.netID)
				} else {
					delete(fanoutDone, m.netID)
				}
			}
			for id := range resizedNow {
				noResize[id] = true
			}
			res.Resized -= len(resizedNow)
			skipPath[curKey] = true
			stale++
			if stale >= 12 {
				break
			}
			continue
		}
		rep = next
		if improvedWorst {
			stale = 0
		}
		if debugTrace {
			fmt.Fprintf(os.Stderr, "opt it=%d period=%.0f score=%.0f moves=%d accept(w=%v s=%v) stale=%d\n",
				it, next.MinPeriod, pathScore(next), moves, improvedWorst, improvedSum, stale)
		}
	}
	// The report describes the final design state exactly (every kept
	// iteration was an improvement; every failed one was rolled back).
	res.Report = rep
	return res, nil
}

// debugTrace enables per-iteration tracing via MACRO3D_OPT_TRACE=1.
var debugTrace = os.Getenv("MACRO3D_OPT_TRACE") == "1"

// pathScore sums the reported near-critical path delays — the
// plateau-breaking acceptance metric.
func pathScore(r *sta.Report) float64 {
	s := 0.0
	for _, p := range r.Paths {
		s += p.Delay
	}
	return s
}

// ckpt captures everything an iteration may touch.
type ckpt struct {
	nInst, nNets int
	masters      []*cell.Cell
	locs         []geom.Point
	sinks        [][]netlist.PinRef
	routes       []*route.NetRoute
}

func checkpoint(ctx *Context) *ckpt {
	nInst, nNets := ctx.Design.Counts()
	c := &ckpt{nInst: nInst, nNets: nNets}
	c.masters = make([]*cell.Cell, nInst)
	c.locs = make([]geom.Point, nInst)
	for i, inst := range ctx.Design.Instances {
		c.masters[i] = inst.Master
		c.locs[i] = inst.Loc
	}
	c.sinks = make([][]netlist.PinRef, nNets)
	for i, n := range ctx.Design.Nets {
		c.sinks[i] = append([]netlist.PinRef(nil), n.Sinks...)
	}
	c.routes = append([]*route.NetRoute(nil), ctx.Routes.Routes...)
	return c
}

func rollback(ctx *Context, c *ckpt) {
	ctx.Design.TruncateTo(c.nInst, c.nNets)
	for i, inst := range ctx.Design.Instances {
		inst.Master = c.masters[i]
		inst.Loc = c.locs[i]
	}
	for i, n := range ctx.Design.Nets {
		n.Sinks = c.sinks[i]
	}
	ctx.Routes.Routes = ctx.Routes.Routes[:0]
	ctx.Routes.Routes = append(ctx.Routes.Routes, c.routes...)
	ctx.DB.RebuildUsage(ctx.Routes)
	// Parasitics: full re-extraction of the restored state.
	*ctx.Ex = *extract.Extract(ctx.Design, ctx.Routes, ctx.DB, ctx.Corner)
}

// fixPath applies sizing and buffering along one path; returns the
// number of edits made (bounded by budget).
// mark records a buffer-insertion marker for rollback bookkeeping.
type mark struct {
	netID int
	chain bool
}

// pathKey identifies a path by its launch and capture points.
func pathKey(p sta.Path) string {
	if len(p.Steps) == 0 {
		return ""
	}
	return p.Steps[0].Ref.String() + "→" + p.Steps[len(p.Steps)-1].Ref.String()
}

func fixPath(ctx *Context, res *Result, steps []sta.PathStep, opt Options, bufSeq *int, touched, fanoutDone, chainDone, noResize, resizedNow map[int]bool, markedNow *[]mark, budget int) int {
	moves := 0
	for i := 0; i+1 < len(steps) && moves < budget; i++ {
		from := steps[i].Ref
		if from.Inst == nil {
			continue
		}
		inst := from.Inst
		// Gate sizing: jump straight to the drive strength matched to
		// the extracted load (R·C_load ≤ ~80 ps), like a real sizer's
		// load-based lookup, instead of creeping one step per pass.
		if !inst.IsMacro() && !noResize[inst.ID] && !resizedNow[inst.ID] {
			if to := sizeForLoad(ctx, inst); to != nil {
				if ecoResize(ctx, inst, to) {
					res.Resized++
					resizedNow[inst.ID] = true
					moves++
					for _, n := range netsOf(ctx.Design, inst) {
						touched[n.ID] = true
					}
				}
			}
		}
		// Wire buffering on the arc leaving this step.
		if n, si := arcNet(ctx, steps, i); n != nil {
			rc := ctx.Ex.Nets[n.ID]
			if rc == nil {
				continue
			}
			// High-fanout decoupling: shield the driver from the bulk
			// of the load first. Each net is wrapped at most once —
			// the tree grows by splitting the (new) cluster nets on
			// later passes, never by chaining levels in front of the
			// root.
			if rc.CTotal() > opt.FanoutCap && len(n.Sinks) >= 2 && !fanoutDone[n.ID] {
				if err := insertFanoutBuffer(ctx, n, opt, bufSeq); err == nil {
					fanoutDone[n.ID] = true
					*markedNow = append(*markedNow, mark{n.ID, false})
					res.Buffers++
					moves++
					touched[n.ID] = true
					continue
				}
			}
			// Like fanout wrapping, a chain is inserted at most once
			// per net; the chain's own nets may be split again later,
			// which terminates because every level is shorter.
			if si < len(rc.ElmoreTo) && rc.ElmoreTo[si] > opt.BufferElmore && !chainDone[n.ID] {
				nb, err := insertBufferChain(ctx, n, si, opt, bufSeq)
				if err == nil && nb > 0 {
					chainDone[n.ID] = true
					*markedNow = append(*markedNow, mark{n.ID, true})
					res.Buffers += nb
					moves++
					touched[n.ID] = true
				}
			}
		}
	}
	return moves
}

// ecoResize swaps the master and, when the footprint grows, relocates
// the cell into legal free space near its old centre. Returns false
// when no legal spot exists (the edit is skipped).
func ecoResize(ctx *Context, inst *netlist.Instance, to *cell.Cell) bool {
	if ctx.fs == nil || to.Width <= inst.Master.Width+1e-9 {
		return ctx.Design.Resize(inst, to) == nil
	}
	oldB := inst.Bounds()
	ctx.fs.Release(oldB)
	loc, ok := ctx.fs.Alloc(to.Width, inst.Center())
	if !ok {
		ctx.fs.Occupy(oldB)
		return false
	}
	if err := ctx.Design.Resize(inst, to); err != nil {
		ctx.fs.Release(geom.RectWH(loc, to.Width, to.Height))
		ctx.fs.Occupy(oldB)
		return false
	}
	inst.Loc = loc
	return true
}

// sizeForLoad returns the smallest family member whose drive meets
// the delay budget for the instance's extracted output load, or nil
// when the current size already suffices (or nothing stronger exists).
func sizeForLoad(ctx *Context, inst *netlist.Instance) *cell.Cell {
	const budgetPs = 100.0
	fam := ctx.Design.Lib.Family(inst.Master.Family)
	if len(fam) == 0 {
		return nil
	}
	// Find the instance's output net load.
	load := 0.0
	for _, n := range ctx.Design.Nets {
		if n.Driver.Inst == inst {
			if rc := ctx.Ex.Nets[n.ID]; rc != nil {
				load = rc.CTotal()
			}
			break
		}
	}
	if load <= 0 {
		return nil
	}
	for _, m := range fam {
		if m.DriveRes*load <= budgetPs {
			if m.Drive > inst.Master.Drive {
				return m
			}
			return nil // current size already adequate
		}
	}
	top := fam[len(fam)-1]
	if top.Drive > inst.Master.Drive {
		return top
	}
	return nil
}

func betterOf(a, b *sta.Report) *sta.Report {
	if b.MinPeriod < a.MinPeriod {
		return b
	}
	return a
}

// netsOf lists the nets touching an instance.
func netsOf(d *netlist.Design, inst *netlist.Instance) []*netlist.Net {
	var out []*netlist.Net
	for _, n := range d.Nets {
		if n.Clock {
			continue
		}
		if n.Driver.Inst == inst {
			out = append(out, n)
			continue
		}
		for _, s := range n.Sinks {
			if s.Inst == inst {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// arcNet finds the net and sink index connecting step i to step i+1 of
// the critical path.
func arcNet(ctx *Context, steps []sta.PathStep, i int) (*netlist.Net, int) {
	from := steps[i].Ref
	to := steps[i+1].Ref
	if from.Inst == nil && from.Port == nil {
		return nil, -1
	}
	for _, n := range ctx.Design.Nets {
		if n.Clock {
			continue
		}
		if !sameRef(n.Driver, from) {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst != nil && to.Inst == s.Inst {
				return n, si
			}
			if s.Port != nil && to.Port == s.Port {
				return n, si
			}
		}
	}
	return nil, -1
}

func sameRef(a, b netlist.PinRef) bool {
	if a.Port != nil || b.Port != nil {
		return a.Port == b.Port
	}
	return a.Inst == b.Inst
}

// insertBufferChain splits the driver→sink arc of net n at sink index
// si with a chain of buffers spaced BufferSpan apart. New nets are
// routed and extracted incrementally. Returns buffers inserted.
func insertBufferChain(ctx *Context, n *netlist.Net, si int, opt Options, seq *int) (int, error) {
	d := ctx.Design
	sink := n.Sinks[si]
	a := n.Driver.Loc()
	b := sink.Loc()
	distTot := a.Manhattan(b)
	k := int(distTot / opt.BufferSpan)
	if k < 1 {
		k = 1
	}
	if k > 10 {
		k = 10
	}
	buf := d.Lib.Cell("BUF_X16")
	if buf == nil {
		return 0, fmt.Errorf("opt: no buffer master")
	}

	// Remove the sink from the original net.
	n.Sinks = append(n.Sinks[:si], n.Sinks[si+1:]...)

	firstNew := len(d.Nets)
	prevNet := n
	for j := 0; j < k; j++ {
		*seq++
		frac := float64(j+1) / float64(k+1)
		loc := a.Add(b.Sub(a).Scale(frac))
		inst := d.AddInstance(fmt.Sprintf("optbuf_%d_%d", len(d.Instances), *seq), buf)
		inst.Loc = ecoPlace(ctx, loc, buf)
		inst.Placed = true
		// Attach the buffer input to the previous stage.
		prevNet.Sinks = append(prevNet.Sinks, netlist.IPin(inst, "A"))
		prevNet = d.AddNet(fmt.Sprintf("optnet_%d_%d", len(d.Nets), *seq), netlist.IPin(inst, "Y"))
	}
	// Final stage drives the original sink.
	prevNet.Sinks = append(prevNet.Sinks, sink)

	// Reroute the modified original net and route the new nets.
	if old := ctx.Routes.Routes[n.ID]; old != nil {
		ctx.DB.ReleaseNet(old)
	}
	r, err := ctx.DB.RouteNet(n)
	if err != nil {
		return 0, err
	}
	ctx.Routes.SetRoute(n.ID, r)
	ctx.Ex.Replace(n.ID, extract.One(n, r, ctx.DB, ctx.Corner))
	// New nets: route + extract.
	for id := firstNew; id < len(d.Nets); id++ {
		nn := d.Nets[id]
		rr, err := ctx.DB.RouteNet(nn)
		if err != nil {
			return 0, err
		}
		ctx.Routes.SetRoute(id, rr)
		ctx.Ex.Replace(id, extract.One(nn, rr, ctx.DB, ctx.Corner))
	}
	return k, nil
}

// insertFanoutBuffer decouples a loaded driver by clustering its sinks
// geometrically (recursive median split on the wider axis) and giving
// each cluster its own buffer at the cluster centroid. The driver then
// sees only the k buffer inputs. Repeated application across
// iterations builds a fanout tree.
func insertFanoutBuffer(ctx *Context, n *netlist.Net, opt Options, seq *int) error {
	d := ctx.Design
	buf := d.Lib.Cell("BUF_X16")
	if buf == nil {
		return fmt.Errorf("opt: no buffer master")
	}
	if len(n.Sinks) < 2 {
		return fmt.Errorf("opt: fanout buffering needs >1 sink")
	}
	rc := ctx.Ex.Nets[n.ID]
	k := 2
	if rc != nil {
		k = int(rc.CTotal()/opt.FanoutCap) + 1
	}
	if k < 2 {
		k = 2
	}
	if k > 8 {
		k = 8
	}
	if k > len(n.Sinks) {
		k = len(n.Sinks)
	}
	clusters := clusterSinks(n.Sinks, k)

	var newNets []*netlist.Net
	var drvSinks []netlist.PinRef
	drv := n.Driver.Loc()
	for _, cl := range clusters {
		if len(cl) == 0 {
			continue
		}
		*seq++
		var cx, cy float64
		for _, s := range cl {
			l := s.Loc()
			cx += l.X
			cy += l.Y
		}
		m := float64(len(cl))
		// The shield buffer sits NEXT TO THE DRIVER (a short hop toward
		// its cluster), so the driver's net shrinks to k pin stubs; the
		// buffer owns the cluster's long wire. Splitting the cluster net
		// on later passes grows a driver-rooted tree outward.
		centroid := geom.Pt(cx/m, cy/m)
		dir := centroid.Sub(drv)
		dist := drv.Manhattan(centroid)
		step := 60.0
		if dist < step {
			step = dist / 2
		}
		var loc geom.Point
		if dist > 1e-9 {
			loc = drv.Add(dir.Scale(step / dist))
		} else {
			loc = drv
		}
		inst := d.AddInstance(fmt.Sprintf("optfbuf_%d_%d", len(d.Instances), *seq), buf)
		inst.Loc = ecoPlace(ctx, geom.Pt(loc.X-buf.Width/2, loc.Y-buf.Height/2), buf)
		inst.Placed = true
		drvSinks = append(drvSinks, netlist.IPin(inst, "A"))
		newNets = append(newNets, d.AddNet(fmt.Sprintf("optfnet_%d_%d", len(d.Nets), *seq), netlist.IPin(inst, "Y"), cl...))
	}
	n.Sinks = drvSinks

	if old := ctx.Routes.Routes[n.ID]; old != nil {
		ctx.DB.ReleaseNet(old)
	}
	r, err := ctx.DB.RouteNet(n)
	if err != nil {
		return err
	}
	ctx.Routes.SetRoute(n.ID, r)
	ctx.Ex.Replace(n.ID, extract.One(n, r, ctx.DB, ctx.Corner))
	for _, nn := range newNets {
		rr, err := ctx.DB.RouteNet(nn)
		if err != nil {
			return err
		}
		ctx.Routes.SetRoute(nn.ID, rr)
		ctx.Ex.Replace(nn.ID, extract.One(nn, rr, ctx.DB, ctx.Corner))
	}
	return nil
}

// ecoPlace claims legal free space near the desired lower-left corner
// for an inserted buffer; without a FreeSpace (unit tests) it falls
// back to die clamping.
func ecoPlace(ctx *Context, ll geom.Point, buf *cell.Cell) geom.Point {
	if ctx.fs != nil {
		if loc, ok := ctx.fs.Alloc(buf.Width, geom.Pt(ll.X+buf.Width/2, ll.Y+buf.Height/2)); ok {
			return loc
		}
	}
	die := ctx.DB.Grid.Region
	return geom.Pt(
		geom.Clamp(ll.X, die.Lx, die.Ux-buf.Width),
		geom.Clamp(ll.Y, die.Ly, die.Uy-buf.Height),
	)
}

// clusterSinks splits sinks into k spatial clusters by recursive
// median bisection along the wider axis.
func clusterSinks(sinks []netlist.PinRef, k int) [][]netlist.PinRef {
	groups := [][]netlist.PinRef{append([]netlist.PinRef(nil), sinks...)}
	for len(groups) < k {
		// Split the largest group.
		bi := 0
		for i, g := range groups {
			if len(g) > len(groups[bi]) {
				bi = i
			}
		}
		g := groups[bi]
		if len(g) < 2 {
			break
		}
		pts := make([]geom.Point, len(g))
		for i, s := range g {
			pts[i] = s.Loc()
		}
		bb := geom.BoundingBox(pts)
		byX := bb.W() >= bb.H()
		sort.Slice(g, func(i, j int) bool {
			if byX {
				return g[i].Loc().X < g[j].Loc().X
			}
			return g[i].Loc().Y < g[j].Loc().Y
		})
		mid := len(g) / 2
		groups[bi] = g[:mid]
		groups = append(groups, g[mid:])
	}
	return groups
}

// LogicCellArea sums the standard-cell area after optimization — the
// paper's A_logic-cells metric (it grows with upsizing).
func LogicCellArea(d *netlist.Design) float64 {
	area := 0.0
	for _, inst := range d.Instances {
		if !inst.IsMacro() && inst.Master.Kind != cell.KindFiller {
			area += inst.Master.Area()
		}
	}
	return area
}
