// Package opt is the timing-driven optimization engine: iterative
// critical-path gate sizing and long-wire buffer insertion, with
// incremental reroute and re-extraction of touched nets.
//
// Two modes matter for the paper's comparison. In the normal mode the
// optimizer co-optimizes against the *true* parasitics — which is what
// Macro-3D (and plain 2D) flows enjoy. In Frozen mode no sizing or
// buffering changes are allowed; S2D/C2D flows use it after tier
// partitioning, when the cells were already sized against the shrunk
// or scaled pseudo-design and the real double-stack parasitics only
// become visible afterwards (paper §III: over-/under-optimized paths
// cannot be fixed because the second routing cannot be co-optimized
// with placement).
//
// Every edit flows through a ddb.Txn change journal: the journal keeps
// the per-net extraction patched in place, feeds the dirty frontier to
// the incremental sta.Engine, and rolls a rejected iteration back in
// O(edits) instead of re-extracting the whole design.
package opt

import (
	"fmt"
	"math"
	"os"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

// Context carries the live design state the optimizer mutates.
type Context struct {
	Design *netlist.Design
	DB     *route.DB
	Routes *route.Result
	Ex     *extract.Design

	Corner tech.CornerScale
	Clock  *cts.Tree

	// FP and RowHeight enable ECO placement: every resize that grows a
	// cell and every inserted buffer claims legal free space near its
	// target, so the optimized design stays physically legal. When FP
	// is nil edits are electrical-only (unit-test mode).
	FP        *floorplan.Floorplan
	RowHeight float64

	// DDB is the design database the edits are journaled through. When
	// set, the state fields above are populated from it; when nil, one
	// is built over the legacy fields (unit-test mode).
	DDB *ddb.DB

	// Obs, when non-nil, is the opt stage's span: the loop publishes
	// iteration/rollback counts to its registry and hands it to the
	// STA engine. nil disables instrumentation.
	Obs *obs.Span

	fs  *place.FreeSpace
	txn *ddb.Txn
}

// Options tunes the loop.
type Options struct {
	// MaxIters bounds the sizing/buffering rounds (default 10).
	MaxIters int
	// MaxMovesPerIter bounds edits per round (default 24).
	MaxMovesPerIter int
	// BufferElmore is the per-arc Elmore delay (ps) above which a
	// buffer chain is inserted (default 120).
	BufferElmore float64
	// BufferSpan is the wire length one buffer drives, µm (default
	// 300).
	BufferSpan float64
	// FanoutCap is the driver load (fF) above which a decoupling
	// buffer is inserted between the driver and all its sinks
	// (default 90).
	FanoutCap float64
	// TargetPeriod stops optimization once MinPeriod ≤ target (0 =
	// optimize to the best achievable — max-performance mode).
	TargetPeriod float64
	// Frozen forbids all edits; Optimize only analyses.
	Frozen bool
	// FullRecompute re-runs STA from scratch every iteration instead
	// of updating only the dirty cone — the benchmark baseline against
	// which the incremental engine is measured.
	FullRecompute bool
	// SelfCheck verifies after every accepted analysis that the
	// incrementally maintained extraction and timing match a
	// from-scratch extract.Extract + sta.Analyze (testing aid; slow).
	SelfCheck bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 250
	}
	if o.MaxMovesPerIter <= 0 {
		o.MaxMovesPerIter = 48
	}
	if o.BufferElmore <= 0 {
		o.BufferElmore = 90
	}
	if o.BufferSpan <= 0 {
		o.BufferSpan = 250
	}
	if o.FanoutCap <= 0 {
		o.FanoutCap = 90
	}
	return o
}

// Result wraps the final timing plus edit statistics.
type Result struct {
	Report   *sta.Report
	Resized  int
	Buffers  int
	Rerouted int
	Iters    int
}

// intSet is a reusable dense set over instance/net ids — the loop's
// bookkeeping runs on integer ids instead of hashed maps, so the per
// iteration allocation churn of the old map-based sets is gone.
type intSet struct {
	in  []bool
	ids []int
}

func (s *intSet) add(id int) {
	for id >= len(s.in) {
		s.in = append(s.in, false)
	}
	if !s.in[id] {
		s.in[id] = true
		s.ids = append(s.ids, id)
	}
}

func (s *intSet) has(id int) bool { return id >= 0 && id < len(s.in) && s.in[id] }

func (s *intSet) remove(id int) {
	if s.has(id) {
		s.in[id] = false
	}
}

// len counts live members (remove may leave stale ids entries).
func (s *intSet) len() int {
	n := 0
	for _, id := range s.ids {
		if s.in[id] {
			n++
		}
	}
	return n
}

// sorted returns the live members ascending (ids are appended in
// insertion order and never re-added while live, so a plain sort of
// the live subset is deterministic).
func (s *intSet) sorted() []int {
	out := make([]int, 0, len(s.ids))
	for _, id := range s.ids {
		if s.in[id] {
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *intSet) reset() {
	for _, id := range s.ids {
		s.in[id] = false
	}
	s.ids = s.ids[:0]
}

// Optimize runs the loop until timing converges, the target is met, or
// the budget is spent.
func Optimize(ctx *Context, staOpt sta.Options, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if ctx.DDB != nil {
		ctx.Design = ctx.DDB.Design
		ctx.DB = ctx.DDB.Grid
		ctx.Routes = ctx.DDB.Routes
		ctx.Ex = ctx.DDB.Ex
		ctx.Corner = ctx.DDB.Corner
	} else {
		ctx.DDB = ddb.New(ctx.Design, ctx.DB, ctx.Routes, ctx.Ex, ctx.Corner)
	}
	staOpt.Clock = ctx.Clock
	staOpt.Corner = ctx.Corner
	if staOpt.TopPaths == 0 {
		staOpt.TopPaths = 48
	}
	if staOpt.Obs == nil {
		staOpt.Obs = ctx.Obs
	}
	reg := ctx.Obs.Reg()
	iterC := reg.Counter("opt_iterations_total",
		"Optimization iterations executed (accepted and rolled back).")
	rollbackC := reg.Counter("opt_rollbacks_total",
		"Optimization iterations rejected and rolled back.")
	res := &Result{}

	period := opt.TargetPeriod
	if period <= 0 {
		period = 1e6
	}
	eng, err := sta.NewEngine(ctx.Design, ctx.Ex, staOpt)
	if err != nil {
		return nil, err
	}
	rep, err := eng.Run(period)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	if opt.Frozen {
		return res, nil
	}
	if ctx.FP != nil && ctx.RowHeight > 0 {
		ctx.fs = place.NewFreeSpace(ctx.Design, ctx.FP, ctx.RowHeight)
	}

	bufSeq := 0
	fanoutDone := &intSet{}
	chainDone := &intSet{}
	noResize := &intSet{}
	skipPath := map[pathID]bool{}
	touched := &intSet{}    // net IDs needing re-extraction
	resizedNow := &intSet{} // instance IDs resized this iteration
	stale := 0
	for it := 0; it < opt.MaxIters; it++ {
		if opt.TargetPeriod > 0 && rep.MinPeriod <= opt.TargetPeriod {
			break
		}
		iterC.Inc()
		moves := 0
		touched.reset()
		resizedNow.reset()
		markedNow := []mark{} // buffer markers set this iteration
		txn := ctx.DDB.Begin()
		ctx.txn = txn

		// Work one path per iteration — the most critical one that is
		// not blocklisted and still has available edits — so
		// acceptance/rollback operates at path granularity.
		paths := rep.Paths
		if len(paths) == 0 {
			paths = []sta.Path{rep.Critical}
		}
		var curKey pathID
		haveKey := false
		for _, p := range paths {
			if moves >= opt.MaxMovesPerIter {
				break
			}
			k := pathKey(p)
			if skipPath[k] {
				continue
			}
			m := fixPath(ctx, res, p.Steps, opt, &bufSeq, touched,
				fanoutDone, chainDone, noResize, resizedNow, &markedNow,
				opt.MaxMovesPerIter-moves)
			if m > 0 && !haveKey {
				curKey = k
				haveKey = true
			}
			moves += m
		}
		if moves == 0 {
			break
		}
		// Touched nets: rerouted (ECO moves shift pins) and re-extracted
		// in deterministic order.
		for _, id := range touched.sorted() {
			if id >= len(ctx.Routes.Routes) || ctx.Routes.Routes[id] == nil {
				continue
			}
			if err := txn.Reroute(ctx.Design.Nets[id]); err != nil {
				return nil, err
			}
		}
		res.Rerouted += touched.len()
		res.Iters = it + 1

		eng.Invalidate(txn.DirtyNets(), txn.DirtyInsts(), txn.TopoChanged())
		var next *sta.Report
		if opt.FullRecompute {
			next, err = eng.Run(period)
		} else {
			next, err = eng.Update(period)
		}
		if err != nil {
			return nil, err
		}
		if opt.SelfCheck {
			if err := selfCheck(ctx, staOpt, period, next); err != nil {
				return nil, err
			}
		}
		// Accept the iteration when the worst path improved or, on a
		// multi-path plateau, when the aggregate of the near-critical
		// paths improved. Otherwise roll back (the edit markers stay,
		// so failed edits are not retried).
		improvedWorst := next.MinPeriod < rep.MinPeriod-0.5
		improvedSum := pathScore(next) < pathScore(rep)-0.5
		if !improvedWorst && !improvedSum {
			rollbackC.Inc()
			nets, insts, topo := txn.Rollback()
			if ctx.FP != nil && ctx.RowHeight > 0 {
				ctx.fs = place.NewFreeSpace(ctx.Design, ctx.FP, ctx.RowHeight)
			}
			// The engine's state reflects the rejected edits; mark the
			// surviving dirty ids again so the next update re-converges
			// it onto the restored design.
			eng.Invalidate(nets, insts, topo)
			// Clear this iteration's buffer markers (the edits were
			// undone and may succeed in a different bundle), but
			// blocklist the path so the identical bundle is not
			// retried immediately.
			for _, m := range markedNow {
				if m.chain {
					chainDone.remove(m.netID)
				} else {
					fanoutDone.remove(m.netID)
				}
			}
			for _, id := range resizedNow.ids {
				noResize.add(id)
			}
			res.Resized -= resizedNow.len()
			skipPath[curKey] = true
			stale++
			if stale >= 12 {
				break
			}
			continue
		}
		txn.Commit()
		rep = next
		if improvedWorst {
			stale = 0
		}
		if debugTrace {
			fmt.Fprintf(os.Stderr, "opt it=%d period=%.0f score=%.0f moves=%d accept(w=%v s=%v) stale=%d\n",
				it, next.MinPeriod, pathScore(next), moves, improvedWorst, improvedSum, stale)
		}
	}
	// The report describes the final design state exactly (every kept
	// iteration was an improvement; every failed one was rolled back).
	res.Report = rep
	if reg != nil {
		reg.Gauge("opt_resized_cells",
			"Net gate resizes surviving in the final design.").Set(float64(res.Resized))
		reg.Gauge("opt_inserted_buffers",
			"Buffers inserted and kept in the final design.").Set(float64(res.Buffers))
		reg.Gauge("opt_min_period_ps",
			"Minimum feasible clock period after optimization, ps.").Set(rep.MinPeriod)
	}
	return res, nil
}

// debugTrace enables per-iteration tracing via MACRO3D_OPT_TRACE=1.
var debugTrace = os.Getenv("MACRO3D_OPT_TRACE") == "1"

// selfCheck asserts the incrementally maintained state equals a
// from-scratch recompute: per-net extraction within 1e-9, and the
// report the engine produced against a fresh sta.Analyze over the same
// extraction (timing numbers and path order).
func selfCheck(ctx *Context, staOpt sta.Options, period float64, got *sta.Report) error {
	const tol = 1e-9
	fresh := extract.Extract(ctx.Design, ctx.Routes, ctx.DB, ctx.Corner)
	if len(fresh.Nets) != len(ctx.Ex.Nets) {
		return fmt.Errorf("opt: selfcheck: extraction has %d nets, scratch %d", len(ctx.Ex.Nets), len(fresh.Nets))
	}
	for id, want := range fresh.Nets {
		have := ctx.Ex.Nets[id]
		if (want == nil) != (have == nil) {
			return fmt.Errorf("opt: selfcheck: net %d extraction nil mismatch", id)
		}
		if want == nil {
			continue
		}
		if math.Abs(want.WireC-have.WireC) > tol || math.Abs(want.WireR-have.WireR) > tol ||
			math.Abs(want.PinC-have.PinC) > tol || len(want.ElmoreTo) != len(have.ElmoreTo) {
			return fmt.Errorf("opt: selfcheck: net %d RC mismatch (have C=%v R=%v pin=%v, want C=%v R=%v pin=%v)",
				id, have.WireC, have.WireR, have.PinC, want.WireC, want.WireR, want.PinC)
		}
		for i := range want.ElmoreTo {
			if math.Abs(want.ElmoreTo[i]-have.ElmoreTo[i]) > tol {
				return fmt.Errorf("opt: selfcheck: net %d sink %d Elmore %v != %v", id, i, have.ElmoreTo[i], want.ElmoreTo[i])
			}
		}
	}
	want, err := sta.Analyze(ctx.Design, ctx.Ex, period, staOpt)
	if err != nil {
		return fmt.Errorf("opt: selfcheck: scratch analysis: %w", err)
	}
	if math.Abs(want.MinPeriod-got.MinPeriod) > tol || math.Abs(want.WNS-got.WNS) > tol ||
		math.Abs(want.TNS-got.TNS) > tol || want.Endpoints != got.Endpoints {
		return fmt.Errorf("opt: selfcheck: report mismatch (have period=%v wns=%v tns=%v ep=%d, want period=%v wns=%v tns=%v ep=%d)",
			got.MinPeriod, got.WNS, got.TNS, got.Endpoints, want.MinPeriod, want.WNS, want.TNS, want.Endpoints)
	}
	if len(want.Paths) != len(got.Paths) {
		return fmt.Errorf("opt: selfcheck: %d paths, scratch %d", len(got.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		w, g := want.Paths[i], got.Paths[i]
		if math.Abs(w.Delay-g.Delay) > tol || len(w.Steps) != len(g.Steps) {
			return fmt.Errorf("opt: selfcheck: path %d mismatch (delay %v vs %v, %d vs %d steps)",
				i, g.Delay, w.Delay, len(g.Steps), len(w.Steps))
		}
		for j := range w.Steps {
			if w.Steps[j].Ref != g.Steps[j].Ref {
				return fmt.Errorf("opt: selfcheck: path %d step %d ref mismatch", i, j)
			}
		}
	}
	return nil
}

// pathScore sums the reported near-critical path delays — the
// plateau-breaking acceptance metric.
func pathScore(r *sta.Report) float64 {
	s := 0.0
	for _, p := range r.Paths {
		s += p.Delay
	}
	return s
}

// fixPath applies sizing and buffering along one path; returns the
// number of edits made (bounded by budget).
// mark records a buffer-insertion marker for rollback bookkeeping.
type mark struct {
	netID int
	chain bool
}

// pathID identifies a path by its launch and capture points — a
// comparable struct key, so the blocklist map hashes two pointers
// instead of formatting strings.
type pathID struct {
	from, to netlist.PinRef
}

func pathKey(p sta.Path) pathID {
	if len(p.Steps) == 0 {
		return pathID{}
	}
	return pathID{from: p.Steps[0].Ref, to: p.Steps[len(p.Steps)-1].Ref}
}

func fixPath(ctx *Context, res *Result, steps []sta.PathStep, opt Options, bufSeq *int, touched, fanoutDone, chainDone, noResize, resizedNow *intSet, markedNow *[]mark, budget int) int {
	moves := 0
	for i := 0; i+1 < len(steps) && moves < budget; i++ {
		from := steps[i].Ref
		if from.Inst == nil {
			continue
		}
		inst := from.Inst
		// Gate sizing: jump straight to the drive strength matched to
		// the extracted load (R·C_load ≤ ~80 ps), like a real sizer's
		// load-based lookup, instead of creeping one step per pass.
		if !inst.IsMacro() && !noResize.has(inst.ID) && !resizedNow.has(inst.ID) {
			if to := sizeForLoad(ctx, inst); to != nil {
				if ecoResize(ctx, inst, to) {
					res.Resized++
					resizedNow.add(inst.ID)
					moves++
					for _, id := range netsOf(ctx, inst) {
						touched.add(id)
					}
				}
			}
		}
		// Wire buffering on the arc leaving this step.
		if n, si := arcNet(ctx, steps, i); n != nil {
			rc := ctx.Ex.Nets[n.ID]
			if rc == nil {
				continue
			}
			// High-fanout decoupling: shield the driver from the bulk
			// of the load first. Each net is wrapped at most once —
			// the tree grows by splitting the (new) cluster nets on
			// later passes, never by chaining levels in front of the
			// root.
			if rc.CTotal() > opt.FanoutCap && len(n.Sinks) >= 2 && !fanoutDone.has(n.ID) {
				if err := insertFanoutBuffer(ctx, n, opt, bufSeq); err == nil {
					fanoutDone.add(n.ID)
					*markedNow = append(*markedNow, mark{n.ID, false})
					res.Buffers++
					moves++
					touched.add(n.ID)
					continue
				}
			}
			// Like fanout wrapping, a chain is inserted at most once
			// per net; the chain's own nets may be split again later,
			// which terminates because every level is shorter.
			if si < len(rc.ElmoreTo) && rc.ElmoreTo[si] > opt.BufferElmore && !chainDone.has(n.ID) {
				nb, err := insertBufferChain(ctx, n, si, opt, bufSeq)
				if err == nil && nb > 0 {
					chainDone.add(n.ID)
					*markedNow = append(*markedNow, mark{n.ID, true})
					res.Buffers += nb
					moves++
					touched.add(n.ID)
				}
			}
		}
	}
	return moves
}

// ecoResize swaps the master and, when the footprint grows, relocates
// the cell into legal free space near its old centre. Returns false
// when no legal spot exists (the edit is skipped).
func ecoResize(ctx *Context, inst *netlist.Instance, to *cell.Cell) bool {
	if ctx.fs == nil || to.Width <= inst.Master.Width+1e-9 {
		return ctx.txn.Resize(inst, to) == nil
	}
	oldB := inst.Bounds()
	ctx.fs.Release(oldB)
	loc, ok := ctx.fs.Alloc(to.Width, inst.Center())
	if !ok {
		ctx.fs.Occupy(oldB)
		return false
	}
	if err := ctx.txn.Resize(inst, to); err != nil {
		ctx.fs.Release(geom.RectWH(loc, to.Width, to.Height))
		ctx.fs.Occupy(oldB)
		return false
	}
	ctx.txn.SetLoc(inst, loc)
	return true
}

// sizeForLoad returns the smallest family member whose drive meets
// the delay budget for the instance's extracted output load, or nil
// when the current size already suffices (or nothing stronger exists).
func sizeForLoad(ctx *Context, inst *netlist.Instance) *cell.Cell {
	const budgetPs = 100.0
	fam := ctx.Design.Lib.Family(inst.Master.Family)
	if len(fam) == 0 {
		return nil
	}
	// Find the instance's output net load (first driven net, as the
	// ddb adjacency stores them in net-ID order).
	load := 0.0
	if ids := ctx.DDB.Driven(inst); len(ids) > 0 {
		if rc := ctx.Ex.Nets[ids[0]]; rc != nil {
			load = rc.CTotal()
		}
	}
	if load <= 0 {
		return nil
	}
	for _, m := range fam {
		if m.DriveRes*load <= budgetPs {
			if m.Drive > inst.Master.Drive {
				return m
			}
			return nil // current size already adequate
		}
	}
	top := fam[len(fam)-1]
	if top.Drive > inst.Master.Drive {
		return top
	}
	return nil
}

func betterOf(a, b *sta.Report) *sta.Report {
	if b.MinPeriod < a.MinPeriod {
		return b
	}
	return a
}

// netsOf lists the ids of the non-clock nets touching an instance,
// from the ddb adjacency (driven nets first, then input nets).
func netsOf(ctx *Context, inst *netlist.Instance) []int {
	var out []int
	for _, id := range ctx.DDB.Driven(inst) {
		if !ctx.Design.Nets[id].Clock {
			out = append(out, int(id))
		}
	}
	for _, id := range ctx.DDB.InputNets(inst) {
		out = append(out, int(id))
	}
	return out
}

// arcNet finds the net and sink index connecting step i to step i+1 of
// the critical path.
func arcNet(ctx *Context, steps []sta.PathStep, i int) (*netlist.Net, int) {
	from := steps[i].Ref
	to := steps[i+1].Ref
	if from.Inst == nil && from.Port == nil {
		return nil, -1
	}
	for _, id := range ctx.DDB.DrivenBy(from) {
		n := ctx.Design.Nets[id]
		if n.Clock {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst != nil && to.Inst == s.Inst {
				return n, si
			}
			if s.Port != nil && to.Port == s.Port {
				return n, si
			}
		}
	}
	return nil, -1
}

// insertBufferChain splits the driver→sink arc of net n at sink index
// si with a chain of buffers spaced BufferSpan apart. New nets are
// routed and extracted incrementally. Returns buffers inserted.
func insertBufferChain(ctx *Context, n *netlist.Net, si int, opt Options, seq *int) (int, error) {
	d := ctx.Design
	sink := n.Sinks[si]
	a := n.Driver.Loc()
	b := sink.Loc()
	distTot := a.Manhattan(b)
	k := int(distTot / opt.BufferSpan)
	if k < 1 {
		k = 1
	}
	if k > 10 {
		k = 10
	}
	buf := d.Lib.Cell("BUF_X16")
	if buf == nil {
		return 0, fmt.Errorf("opt: no buffer master")
	}

	// Remove the sink from the original net.
	ctx.txn.RemoveSinkAt(n, si)

	firstNew := len(d.Nets)
	prevNet := n
	for j := 0; j < k; j++ {
		*seq++
		frac := float64(j+1) / float64(k+1)
		loc := a.Add(b.Sub(a).Scale(frac))
		inst := ctx.txn.AddInstance(fmt.Sprintf("optbuf_%d_%d", len(d.Instances), *seq), buf)
		inst.Loc = ecoPlace(ctx, loc, buf)
		inst.Placed = true
		// Attach the buffer input to the previous stage.
		ctx.txn.AppendSink(prevNet, netlist.IPin(inst, "A"))
		prevNet = ctx.txn.AddNet(fmt.Sprintf("optnet_%d_%d", len(d.Nets), *seq), netlist.IPin(inst, "Y"))
	}
	// Final stage drives the original sink.
	ctx.txn.AppendSink(prevNet, sink)

	// Reroute the modified original net and route the new nets.
	if err := ctx.txn.Reroute(n); err != nil {
		return 0, err
	}
	for id := firstNew; id < len(d.Nets); id++ {
		if err := ctx.txn.Reroute(d.Nets[id]); err != nil {
			return 0, err
		}
	}
	return k, nil
}

// insertFanoutBuffer decouples a loaded driver by clustering its sinks
// geometrically (recursive median split on the wider axis) and giving
// each cluster its own buffer at the cluster centroid. The driver then
// sees only the k buffer inputs. Repeated application across
// iterations builds a fanout tree.
func insertFanoutBuffer(ctx *Context, n *netlist.Net, opt Options, seq *int) error {
	d := ctx.Design
	buf := d.Lib.Cell("BUF_X16")
	if buf == nil {
		return fmt.Errorf("opt: no buffer master")
	}
	if len(n.Sinks) < 2 {
		return fmt.Errorf("opt: fanout buffering needs >1 sink")
	}
	rc := ctx.Ex.Nets[n.ID]
	k := 2
	if rc != nil {
		k = int(rc.CTotal()/opt.FanoutCap) + 1
	}
	if k < 2 {
		k = 2
	}
	if k > 8 {
		k = 8
	}
	if k > len(n.Sinks) {
		k = len(n.Sinks)
	}
	clusters := clusterSinks(n.Sinks, k)

	var newNets []*netlist.Net
	var drvSinks []netlist.PinRef
	drv := n.Driver.Loc()
	for _, cl := range clusters {
		if len(cl) == 0 {
			continue
		}
		*seq++
		var cx, cy float64
		for _, s := range cl {
			l := s.Loc()
			cx += l.X
			cy += l.Y
		}
		m := float64(len(cl))
		// The shield buffer sits NEXT TO THE DRIVER (a short hop toward
		// its cluster), so the driver's net shrinks to k pin stubs; the
		// buffer owns the cluster's long wire. Splitting the cluster net
		// on later passes grows a driver-rooted tree outward.
		centroid := geom.Pt(cx/m, cy/m)
		dir := centroid.Sub(drv)
		dist := drv.Manhattan(centroid)
		step := 60.0
		if dist < step {
			step = dist / 2
		}
		var loc geom.Point
		if dist > 1e-9 {
			loc = drv.Add(dir.Scale(step / dist))
		} else {
			loc = drv
		}
		inst := ctx.txn.AddInstance(fmt.Sprintf("optfbuf_%d_%d", len(d.Instances), *seq), buf)
		inst.Loc = ecoPlace(ctx, geom.Pt(loc.X-buf.Width/2, loc.Y-buf.Height/2), buf)
		inst.Placed = true
		drvSinks = append(drvSinks, netlist.IPin(inst, "A"))
		newNets = append(newNets, ctx.txn.AddNet(fmt.Sprintf("optfnet_%d_%d", len(d.Nets), *seq), netlist.IPin(inst, "Y"), cl...))
	}
	ctx.txn.ReplaceSinks(n, drvSinks)

	if err := ctx.txn.Reroute(n); err != nil {
		return err
	}
	for _, nn := range newNets {
		if err := ctx.txn.Reroute(nn); err != nil {
			return err
		}
	}
	return nil
}

// ecoPlace claims legal free space near the desired lower-left corner
// for an inserted buffer; without a FreeSpace (unit tests) it falls
// back to die clamping.
func ecoPlace(ctx *Context, ll geom.Point, buf *cell.Cell) geom.Point {
	if ctx.fs != nil {
		if loc, ok := ctx.fs.Alloc(buf.Width, geom.Pt(ll.X+buf.Width/2, ll.Y+buf.Height/2)); ok {
			return loc
		}
	}
	die := ctx.DB.Grid.Region
	return geom.Pt(
		geom.Clamp(ll.X, die.Lx, die.Ux-buf.Width),
		geom.Clamp(ll.Y, die.Ly, die.Uy-buf.Height),
	)
}

// clusterSinks splits sinks into k spatial clusters by recursive
// median bisection along the wider axis.
func clusterSinks(sinks []netlist.PinRef, k int) [][]netlist.PinRef {
	groups := [][]netlist.PinRef{append([]netlist.PinRef(nil), sinks...)}
	for len(groups) < k {
		// Split the largest group.
		bi := 0
		for i, g := range groups {
			if len(g) > len(groups[bi]) {
				bi = i
			}
		}
		g := groups[bi]
		if len(g) < 2 {
			break
		}
		pts := make([]geom.Point, len(g))
		for i, s := range g {
			pts[i] = s.Loc()
		}
		bb := geom.BoundingBox(pts)
		byX := bb.W() >= bb.H()
		sort.Slice(g, func(i, j int) bool {
			if byX {
				return g[i].Loc().X < g[j].Loc().X
			}
			return g[i].Loc().Y < g[j].Loc().Y
		})
		mid := len(g) / 2
		groups[bi] = g[:mid]
		groups = append(groups, g[mid:])
	}
	return groups
}

// LogicCellArea sums the standard-cell area after optimization — the
// paper's A_logic-cells metric (it grows with upsizing).
func LogicCellArea(d *netlist.Design) float64 {
	area := 0.0
	for _, inst := range d.Instances {
		if !inst.IsMacro() && inst.Master.Kind != cell.KindFiller {
			area += inst.Master.Area()
		}
	}
	return area
}
