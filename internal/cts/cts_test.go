package cts

import (
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/tech"
)

// gridDesign builds nFF flip-flops on a uniform grid with one clock
// net.
func gridDesign(nx, ny int, pitch float64) (*netlist.Design, *netlist.Net, geom.Point) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("grid", lib)
	clkPort := d.AddPort("clk", cell.DirIn)
	clkPort.Loc = geom.Pt(0, 0)
	var sinks []netlist.PinRef
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			ff := d.AddInstance(name(x, y), lib.MustCell("DFF_X1"))
			ff.Loc = geom.Pt(float64(x)*pitch, float64(y)*pitch)
			ff.Placed = true
			sinks = append(sinks, netlist.IPin(ff, "CK"))
		}
	}
	n := d.AddNet("clk", netlist.PPin(clkPort), sinks...)
	n.Clock = true
	return d, n, clkPort.Loc
}

func name(x, y int) string {
	return "ff_" + itoa(x) + "_" + itoa(y)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func beol(t *testing.T) *tech.BEOL {
	t.Helper()
	b, err := tech.NewBEOL28("clk", 6)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildGrid(t *testing.T) {
	d, clk, src := gridDesign(16, 16, 50)
	tr := Build(d, clk, src, d.Lib, beol(t), Options{})
	if tr.Depth < 4 {
		t.Fatalf("depth = %d, implausibly shallow for 256 sinks", tr.Depth)
	}
	if tr.Buffers < 20 {
		t.Fatalf("buffers = %d", tr.Buffers)
	}
	if len(tr.LatencyOf) != 256 {
		t.Fatalf("latencies for %d sinks, want 256", len(tr.LatencyOf))
	}
	if tr.MaxLatency <= 0 || tr.MinLatency <= 0 || tr.MaxLatency < tr.MinLatency {
		t.Fatalf("latency range [%v, %v]", tr.MinLatency, tr.MaxLatency)
	}
	if tr.Skew < 0 || tr.Skew != tr.MaxLatency-tr.MinLatency {
		t.Fatalf("skew = %v", tr.Skew)
	}
	// Balanced geometric tree: skew well under max latency.
	if tr.Skew > 0.6*tr.MaxLatency {
		t.Fatalf("skew %v vs latency %v: unbalanced", tr.Skew, tr.MaxLatency)
	}
	if tr.Wirelength <= 0 || tr.TotalCap() <= 0 {
		t.Fatal("no wire accounted")
	}
}

// TestRootDelayAccounted pins the once-discarded root return of the
// tree builder: RootDelay must carry the root buffer's stage delay —
// positive, and a lower bound on every sink latency (each path goes
// through the root buffer and only accumulates from there). The empty
// tree keeps it at zero.
func TestRootDelayAccounted(t *testing.T) {
	d, clk, src := gridDesign(16, 16, 50)
	tr := Build(d, clk, src, d.Lib, beol(t), Options{})
	if tr.RootDelay <= 0 {
		t.Fatalf("RootDelay = %v, want the root buffer's positive stage delay", tr.RootDelay)
	}
	if tr.RootDelay > tr.MinLatency {
		t.Fatalf("RootDelay %v exceeds MinLatency %v: every sink path includes the root stage",
			tr.RootDelay, tr.MinLatency)
	}
	for id, lat := range tr.LatencyOf {
		if lat < tr.RootDelay {
			t.Fatalf("sink %d latency %v below RootDelay %v", id, lat, tr.RootDelay)
		}
	}
}

func TestDepthGrowsWithDieSize(t *testing.T) {
	// The paper's Table II observes deeper trees on bigger floorplans
	// (2D large: 20 vs 3D large: 16). Same sink count, scaled pitch.
	d1, c1, s1 := gridDesign(12, 12, 40)
	d2, c2, s2 := gridDesign(12, 12, 160)
	b := beol(t)
	t1 := Build(d1, c1, s1, d1.Lib, b, Options{})
	t2 := Build(d2, c2, s2, d2.Lib, b, Options{})
	if t2.Depth <= t1.Depth {
		t.Fatalf("depth did not grow with die size: %d vs %d", t1.Depth, t2.Depth)
	}
	if t2.MaxLatency <= t1.MaxLatency {
		t.Fatal("latency did not grow with die size")
	}
	if t2.Wirelength <= t1.Wirelength {
		t.Fatal("wirelength did not grow with die size")
	}
}

func TestLatencyMonotoneFromSource(t *testing.T) {
	d, clk, src := gridDesign(8, 8, 100)
	tr := Build(d, clk, src, d.Lib, beol(t), Options{})
	// The farthest sink should not be faster than the nearest sink.
	var nearLat, farLat float64
	for _, s := range clk.Sinks {
		lat := tr.LatencyOf[s.Inst.ID]
		dist := src.Manhattan(s.Loc())
		if dist < 50 {
			nearLat = lat
		}
		if dist > 1200 {
			farLat = lat
		}
	}
	if nearLat == 0 || farLat == 0 {
		t.Skip("grid points not found")
	}
	if farLat < nearLat {
		t.Fatalf("far sink faster than near sink: %v < %v", farLat, nearLat)
	}
}

func TestEmptyClock(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("e", lib)
	p := d.AddPort("clk", cell.DirIn)
	n := d.AddNet("clk", netlist.PPin(p))
	n.Clock = true
	tr := Build(d, n, geom.Pt(0, 0), lib, beol(t), Options{})
	if tr.Depth != 0 || tr.Buffers != 0 || len(tr.LatencyOf) != 0 {
		t.Fatalf("empty clock produced %+v", tr)
	}
}

func TestPitonTileTreeDepthBand(t *testing.T) {
	if testing.Short() {
		t.Skip("tile CTS in -short mode")
	}
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		t.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)
	if _, err := place.Place(d, fp, 1.2, place.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	tr := Build(d, d.Net("clk"), d.Port("clk_i").Loc, d.Lib, beol(t), Options{})
	t.Logf("tile tree: depth %d, %d buffers, %.2f mm wire, skew %.0f ps, latency %.0f ps",
		tr.Depth, tr.Buffers, tr.Wirelength/1e3, tr.Skew, tr.MaxLatency)
	// Paper band for 2D trees: depth 13 (small) to 20 (large). Accept
	// a generous band around it.
	if tr.Depth < 8 || tr.Depth > 26 {
		t.Fatalf("tree depth %d outside plausible band", tr.Depth)
	}
	if tr.Skew > 0.5*tr.MaxLatency {
		t.Fatalf("unbalanced tree: skew %v latency %v", tr.Skew, tr.MaxLatency)
	}
}

func TestSkewBalancing(t *testing.T) {
	d, clk, src := gridDesign(12, 12, 120)
	b := beol(t)
	balanced := Build(d, clk, src, d.Lib, b, Options{})
	raw := Build(d, clk, src, d.Lib, b, Options{NoSkewBalance: true})
	// Balancing caps skew at the residual.
	if balanced.Skew > 25+1e-9 {
		t.Fatalf("balanced skew = %v", balanced.Skew)
	}
	if raw.Skew <= balanced.Skew {
		t.Fatalf("raw tree (%v) not worse than balanced (%v)", raw.Skew, balanced.Skew)
	}
	// Balancing only delays sinks (pads), never speeds them up, and
	// the max latency is unchanged.
	if balanced.MaxLatency != raw.MaxLatency {
		t.Fatalf("max latency changed by balancing: %v vs %v", balanced.MaxLatency, raw.MaxLatency)
	}
	for id, l := range balanced.LatencyOf {
		if l < raw.LatencyOf[id]-1e-9 {
			t.Fatalf("sink %d sped up by balancing", id)
		}
	}
	// Structure metrics unaffected.
	if balanced.Depth != raw.Depth || balanced.Buffers != raw.Buffers {
		t.Fatal("balancing changed tree structure metrics")
	}
}

func TestResidualSkewOption(t *testing.T) {
	d, clk, src := gridDesign(10, 10, 150)
	b := beol(t)
	tight := Build(d, clk, src, d.Lib, b, Options{ResidualSkew: 5})
	loose := Build(d, clk, src, d.Lib, b, Options{ResidualSkew: 60})
	if tight.Skew > 5+1e-9 {
		t.Fatalf("tight skew = %v", tight.Skew)
	}
	if loose.Skew <= tight.Skew {
		t.Fatalf("loose (%v) not looser than tight (%v)", loose.Skew, tight.Skew)
	}
}

func TestTotalCap(t *testing.T) {
	d, clk, src := gridDesign(6, 6, 80)
	tr := Build(d, clk, src, d.Lib, beol(t), Options{})
	if tr.TotalCap() != tr.WireCap+tr.PinCap {
		t.Fatal("TotalCap inconsistent")
	}
	if tr.TotalCap() <= 0 {
		t.Fatal("no capacitance accounted")
	}
}
