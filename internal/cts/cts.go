// Package cts builds a clock distribution tree over the sequential
// elements of a placed design: recursive geometric bisection down to
// leaf clusters, a buffer per tree node, and distance-proportional
// repeater chains on long tree edges. The tree is an analysis object —
// it yields the paper's clock metrics (max tree depth, skew, latency)
// and the clock contribution to power — rather than inserting buffer
// instances into the netlist.
package cts

import (
	"math"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/tech"
)

// Options tunes tree construction.
type Options struct {
	// MaxLeafSinks is the sink count a single leaf buffer may drive
	// (default 12).
	MaxLeafSinks int
	// RepeaterSpan is the wire length after which a repeater is
	// inserted on a tree edge, µm (default 220).
	RepeaterSpan float64
	// BufferName selects the clock buffer master (default BUF_X8).
	BufferName string
	// NoSkewBalance disables the final leaf-delay balancing pass.
	// Balanced trees are standard sign-off practice: delay padding at
	// the leaves equalizes sink latencies to the slowest branch,
	// leaving only an engineering residual.
	NoSkewBalance bool
	// ResidualSkew is the skew remaining after balancing, ps
	// (default 25).
	ResidualSkew float64
}

func (o Options) withDefaults() Options {
	if o.MaxLeafSinks <= 0 {
		o.MaxLeafSinks = 12
	}
	if o.RepeaterSpan <= 0 {
		o.RepeaterSpan = 220
	}
	if o.BufferName == "" {
		o.BufferName = "BUF_X8"
	}
	if o.ResidualSkew <= 0 {
		o.ResidualSkew = 25
	}
	return o
}

// Sink is one clocked endpoint.
type Sink struct {
	Inst *netlist.Instance
	Loc  geom.Point
	Cap  float64
}

// Tree is the synthesized clock tree with its analysis results.
type Tree struct {
	Depth      int     // max buffers on any source→sink path
	Buffers    int     // total buffers (tree nodes + repeaters)
	Wirelength float64 // µm
	WireCap    float64 // fF
	PinCap     float64 // fF (sink + buffer input pins)

	MaxLatency  float64 // ps
	MinLatency  float64 // ps
	Skew        float64 // ps (max − min)
	MeanLatency float64
	// RootDelay is the root buffer's stage delay, ps — the fixed
	// source-insertion component every sink path shares, and a lower
	// bound on every sink latency.
	RootDelay float64

	// Latency per sink instance ID (ps).
	LatencyOf map[int]float64
}

// clock wires route on the top metal pair; use an average of the two
// top layers' per-µm parasitics.
func clockWireRC(b *tech.BEOL) (rPer, cPer float64) {
	n := len(b.Layers)
	l1, l2 := b.Layers[n-1], b.Layers[max(0, n-2)]
	return (l1.RPerUm + l2.RPerUm) / 2, (l1.CPerUm + l2.CPerUm) / 2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Build synthesizes a clock tree for the design's clock net, rooted at
// src (the clock port). Sequential instances on other dies are reached
// through the F2F via transparently — their (x, y) is what matters.
func Build(d *netlist.Design, clk *netlist.Net, src geom.Point, lib *cell.Library, beol *tech.BEOL, opt Options) *Tree {
	opt = opt.withDefaults()
	buf := lib.MustCell(opt.BufferName)
	rPer, cPer := clockWireRC(beol)

	var sinks []Sink
	for _, s := range clk.Sinks {
		if s.Inst == nil {
			continue
		}
		sinks = append(sinks, Sink{Inst: s.Inst, Loc: s.Loc(), Cap: s.Cap()})
	}
	t := &Tree{LatencyOf: make(map[int]float64, len(sinks))}
	if len(sinks) == 0 {
		return t
	}

	t.MinLatency = math.MaxFloat64
	buildNode(t, sinks, src, 1, buf, rPer, cPer, opt)
	if t.MinLatency == math.MaxFloat64 {
		t.MinLatency = 0
	}
	t.Skew = t.MaxLatency - t.MinLatency

	if !opt.NoSkewBalance && len(t.LatencyOf) > 1 {
		// Leaf delay padding: every sink is slowed to the latest branch
		// minus a proportional share of the residual, like the delay
		// cells a production CTS inserts.
		spread := opt.ResidualSkew
		if t.Skew < spread {
			spread = t.Skew
		}
		for id, l := range t.LatencyOf {
			frac := 0.0
			if t.Skew > 0 {
				frac = (t.MaxLatency - l) / t.Skew
			}
			t.LatencyOf[id] = t.MaxLatency - frac*spread
		}
		t.MinLatency = t.MaxLatency - spread
		t.Skew = spread
	}

	// Sum in sorted-ID order: float addition is order-sensitive and
	// map iteration is randomized, so a raw range would make
	// MeanLatency wobble by an ULP between otherwise identical runs.
	ids := make([]int, 0, len(t.LatencyOf))
	for id := range t.LatencyOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sum := 0.0
	for _, id := range ids {
		sum += t.LatencyOf[id]
	}
	t.MeanLatency = sum / float64(len(t.LatencyOf))
	return t
}

// buildNode recursively splits the sink set; it accounts the buffer at
// this node, the wires to children, and repeaters on long spans.
// depth counts buffers from the root, latency in ps accumulates along
// the path. Results accumulate in t; the root call's return — the path
// latency through the root buffer — is the tree's source insertion
// delay and lands in t.RootDelay.
func buildNode(t *Tree, sinks []Sink, at geom.Point, depth int, buf *cell.Cell, rPer, cPer float64, opt Options) {
	t.RootDelay = buildNodeFrom(t, sinks, at, depth, 0, buf, rPer, cPer, opt)
}

func buildNodeFrom(t *Tree, sinks []Sink, at geom.Point, depth int, pathLatency float64, buf *cell.Cell, rPer, cPer float64, opt Options) float64 {
	// This node carries one buffer.
	t.Buffers++
	if depth > t.Depth {
		t.Depth = depth
	}
	t.PinCap += buf.Pin("A").Cap

	if len(sinks) <= opt.MaxLeafSinks {
		// Leaf: the buffer drives the sinks directly over a star.
		var load, wl float64
		for _, s := range sinks {
			dist := at.Manhattan(s.Loc)
			wl += dist
			load += s.Cap + dist*cPer
		}
		t.Wirelength += wl
		t.WireCap += wl * cPer
		t.PinCap += sumCaps(sinks)
		drv := buf.Delay(load, 0)
		for _, s := range sinks {
			dist := at.Manhattan(s.Loc)
			wire := dist * rPer * (dist*cPer/2 + s.Cap)
			lat := pathLatency + drv + wire
			t.LatencyOf[s.Inst.ID] = lat
			if lat > t.MaxLatency {
				t.MaxLatency = lat
			}
			if lat < t.MinLatency {
				t.MinLatency = lat
			}
		}
		return pathLatency + drv
	}

	// Internal node: bisect along the wider axis at the median.
	bb := boundingBox(sinks)
	byX := bb.W() >= bb.H()
	sorted := append([]Sink(nil), sinks...)
	sort.Slice(sorted, func(i, j int) bool {
		if byX {
			return sorted[i].Loc.X < sorted[j].Loc.X
		}
		return sorted[i].Loc.Y < sorted[j].Loc.Y
	})
	mid := len(sorted) / 2
	halves := [][]Sink{sorted[:mid], sorted[mid:]}

	// The node buffer drives the two child buffers over tree edges.
	var childLocs [2]geom.Point
	var load float64
	for i, h := range halves {
		childLocs[i] = centroid(h)
		dist := at.Manhattan(childLocs[i])
		load += dist*cPer + buf.Pin("A").Cap
	}
	drv := buf.Delay(load, 0)

	for i, h := range halves {
		dist := at.Manhattan(childLocs[i])
		t.Wirelength += dist
		t.WireCap += dist * cPer

		// Repeater chain on long spans: each repeater adds a buffer
		// stage and resets the RC accumulation.
		nRep := int(dist / opt.RepeaterSpan)
		repDelay := 0.0
		childDepth := depth + 1 + nRep
		if nRep > 0 {
			t.Buffers += nRep
			t.PinCap += float64(nRep) * buf.Pin("A").Cap
			seg := dist / float64(nRep+1)
			segRC := seg * rPer * (seg*cPer/2 + buf.Pin("A").Cap)
			repDelay = float64(nRep)*buf.Delay(seg*cPer+buf.Pin("A").Cap, 0) + float64(nRep+1)*segRC
		} else {
			repDelay = dist * rPer * (dist*cPer/2 + buf.Pin("A").Cap)
		}
		buildNodeFrom(t, h, childLocs[i], childDepth, pathLatency+drv+repDelay, buf, rPer, cPer, opt)
	}
	return pathLatency + drv
}

func sumCaps(sinks []Sink) float64 {
	s := 0.0
	for _, k := range sinks {
		s += k.Cap
	}
	return s
}

func centroid(sinks []Sink) geom.Point {
	var x, y float64
	for _, s := range sinks {
		x += s.Loc.X
		y += s.Loc.Y
	}
	n := float64(len(sinks))
	return geom.Pt(x/n, y/n)
}

func boundingBox(sinks []Sink) geom.Rect {
	pts := make([]geom.Point, len(sinks))
	for i, s := range sinks {
		pts[i] = s.Loc
	}
	return geom.BoundingBox(pts)
}

// TotalCap returns the switched capacitance of the tree (wire + pins),
// fF — the clock net toggles every cycle, so power weights this at
// activity 1.
func (t *Tree) TotalCap() float64 { return t.WireCap + t.PinCap }
