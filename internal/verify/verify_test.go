// External test package: flows imports verify (the sign-off stage),
// and these tests drive full flows, so an in-package test would create
// an import cycle.
package verify_test

import (
	"strings"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/core"
	"macro3d/internal/flows"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/route"
	"macro3d/internal/tech"
	"macro3d/internal/verify"
)

func TestPlacementCatchesOverlap(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X4"))
	a.Loc = geom.Pt(10, 10)
	a.Placed = true
	b := d.AddInstance("b", lib.MustCell("INV_X4"))
	b.Loc = geom.Pt(10.1, 10) // overlapping
	b.Placed = true
	rep := &verify.Report{}
	verify.Placement(rep, d, geom.R(0, 0, 100, 100))
	if rep.Clean() {
		t.Fatal("overlap missed")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "overlap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong kind: %v", rep.Violations)
	}
	// Different dies may overlap in (x, y).
	b.Die = netlist.MacroDie
	rep2 := &verify.Report{}
	verify.Placement(rep2, d, geom.R(0, 0, 100, 100))
	if !rep2.Clean() {
		t.Fatalf("cross-die overlap flagged: %v", rep2.Violations)
	}
}

func TestPlacementCatchesOffDieAndMacroOverlap(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	a.Loc = geom.Pt(-5, 10)
	a.Placed = true
	sram, _ := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 512, Bits: 8})
	m := d.AddInstance("mem", sram)
	m.Loc = geom.Pt(20, 20)
	m.Placed = true
	c := d.AddInstance("c", lib.MustCell("INV_X1"))
	c.Loc = geom.Pt(25, 25) // on the macro, same die
	c.Placed = true
	rep := &verify.Report{}
	verify.Placement(rep, d, geom.R(0, 0, 200, 200))
	kinds := map[string]int{}
	for _, v := range rep.Violations {
		kinds[v.Kind]++
	}
	if kinds["off-die"] == 0 || kinds["overlap"] == 0 {
		t.Fatalf("kinds: %v", kinds)
	}
}

func TestPlacementCatchesZeroAreaMacro(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	degenerate := &cell.Cell{Name: "ZERO", Kind: cell.KindMacro, Width: 0, Height: 0}
	lib.Add(degenerate)
	m := d.AddInstance("z", degenerate)
	m.Loc = geom.Pt(10, 10)
	m.Placed = true
	rep := &verify.Report{}
	verify.Placement(rep, d, geom.R(0, 0, 100, 100))
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "zero-area" {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-area macro missed: %v", rep.Violations)
	}
}

func TestReportDedupAndTruncation(t *testing.T) {
	// Identical findings collapse into one entry with a count.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X4"))
	a.Loc = geom.Pt(10, 10)
	a.Placed = true
	b := d.AddInstance("b", lib.MustCell("INV_X4"))
	b.Loc = geom.Pt(10.05, 10)
	b.Placed = true
	rep := &verify.Report{}
	verify.Placement(rep, d, geom.R(0, 0, 100, 100))
	verify.Placement(rep, d, geom.R(0, 0, 100, 100)) // same findings again
	for _, v := range rep.Violations {
		if v.Kind == "overlap" && v.Count != 2 {
			t.Fatalf("duplicate overlap not collapsed: %+v", v)
		}
	}
	if rep.Total != 2*len(rep.Violations) {
		t.Fatalf("Total %d, want %d", rep.Total, 2*len(rep.Violations))
	}

	// Past the cap, distinct findings are dropped but counted.
	many := &verify.Report{}
	var bumps []geom.Point
	// 300 bumps in a tight 0.1 µm row at a 1 µm pitch → well over 200
	// distinct pair violations.
	for i := 0; i < 300; i++ {
		bumps = append(bumps, geom.Pt(float64(i)*0.1, 0))
	}
	verify.BumpRules(many, bumps, tech.DefaultF2F())
	if !many.Truncated {
		t.Fatal("cap hit but Truncated not set")
	}
	if len(many.Violations) != 200 {
		t.Fatalf("kept %d findings, want 200", len(many.Violations))
	}
	if many.Total <= 200 {
		t.Fatalf("Total %d did not keep counting past the cap", many.Total)
	}
}

func TestErrorRendersSummary(t *testing.T) {
	rep := &verify.Report{}
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	a.Loc = geom.Pt(-5, 10)
	a.Placed = true
	verify.Placement(rep, d, geom.R(0, 0, 100, 100))
	err := &verify.Error{Report: rep}
	if !strings.Contains(err.Error(), "off-die") {
		t.Fatalf("error lacks finding kinds: %v", err)
	}
}

func TestBumpRules(t *testing.T) {
	f2f := tech.DefaultF2F()
	rep := &verify.Report{}
	verify.BumpRules(rep, []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2.4, Y: 0}}, f2f)
	if rep.Clean() {
		t.Fatal("0.4 µm bump spacing accepted at 1 µm pitch")
	}
	rep2 := &verify.Report{}
	verify.BumpRules(rep2, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}, f2f)
	if !rep2.Clean() {
		t.Fatalf("legal grid flagged: %v", rep2.Violations)
	}
}

func TestFullSignoffOnMacro3DFlow(t *testing.T) {
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 5}
	_, st, mol, err := flows.RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logicPart, _, err := core.Separate(mol, st.Routes, st.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Abutment pairs derived from the tile's groups via name flip.
	pairs := map[string]string{}
	for _, p := range st.Design.Ports {
		if strings.Contains(p.Name, "_N_out_") {
			pairs[p.Name] = strings.Replace(p.Name, "_N_out_", "_S_in_", 1)
		}
		if strings.Contains(p.Name, "_E_out_") {
			pairs[p.Name] = strings.Replace(p.Name, "_E_out_", "_W_in_", 1)
		}
	}
	t28, _ := tech.New28(6)
	rep := verify.Full(st.Design, st.Die, st.Routes, logicPart.Bumps, t28.F2F, pairs)
	if !rep.Clean() {
		for i, v := range rep.Violations {
			t.Errorf("violation: %v", v)
			if i > 5 {
				break
			}
		}
		t.Fatalf("Macro-3D sign-off found %d violations", rep.Total)
	}
	if rep.Checked.Instances == 0 || rep.Checked.Nets == 0 || rep.Checked.Bumps == 0 {
		t.Fatalf("checks did not run: %+v", rep.Checked)
	}
}

func TestFullSignoffOn2DFlow(t *testing.T) {
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 5}
	_, st, err := flows.Run2D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Full(st.Design, st.Die, st.Routes, nil, tech.DefaultF2F(), nil)
	if !rep.Clean() {
		t.Fatalf("2D sign-off: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestConnectivityCatchesMissingRoute(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	b := d.AddInstance("b", lib.MustCell("INV_X1"))
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(b, "A"))
	rep := &verify.Report{}
	verify.Connectivity(rep, d, &route.Result{Routes: []*route.NetRoute{nil}})
	if rep.Clean() {
		t.Fatal("missing route accepted")
	}
}
