// Package verify is the sign-off checker: after a flow finishes, it
// re-derives from first principles that the produced implementation is
// physically consistent — placement legality, routing connectivity of
// every net, macro-obstruction violations, F2F bump spacing against
// the bonding pitch, and tile-port alignment. Flows and tests run it
// as an independent witness (it shares no state with the tools it
// checks).
package verify

import (
	"fmt"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// Violation is one finding. Identical findings reported repeatedly
// are collapsed into one entry with Count > 1.
type Violation struct {
	Kind  string // "overlap", "off-die", "zero-area", "open-net", "obstruction", "bump-pitch", "port-align"
	Msg   string
	Count int // occurrences of this exact finding (≥ 1)
}

func (v Violation) String() string {
	s := v.Kind + ": " + v.Msg
	if v.Count > 1 {
		s += fmt.Sprintf(" (×%d)", v.Count)
	}
	return s
}

// maxFindings bounds the number of *distinct* findings a report keeps
// so a systematic failure does not explode; Total keeps counting.
const maxFindings = 200

// Report collects findings per check.
type Report struct {
	Violations []Violation
	// Total counts every reported violation, including duplicates of
	// kept findings and distinct findings dropped past the cap.
	Total int
	// Truncated is set when distinct findings beyond maxFindings were
	// dropped — Violations is then a sample, Total the real count.
	Truncated bool

	Checked struct {
		Instances int
		Nets      int
		Bumps     int
	}

	seen map[string]int // finding key → index in Violations
}

// Clean reports whether sign-off passed.
func (r *Report) Clean() bool { return r.Total == 0 }

func (r *Report) add(kind, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	r.Total++
	if r.seen == nil {
		r.seen = make(map[string]int)
	}
	key := kind + "\x00" + msg
	if i, dup := r.seen[key]; dup {
		r.Violations[i].Count++
		return
	}
	if len(r.Violations) >= maxFindings {
		r.Truncated = true
		return
	}
	r.seen[key] = len(r.Violations)
	r.Violations = append(r.Violations, Violation{Kind: kind, Msg: msg, Count: 1})
}

// Error wraps a dirty Report as an error, so flows can surface failed
// sign-off through their typed stage-error chain.
type Error struct {
	Report *Report
}

func (e *Error) Error() string {
	r := e.Report
	s := fmt.Sprintf("verify: %d violations", r.Total)
	if r.Truncated {
		s += fmt.Sprintf(" (%d distinct kept)", len(r.Violations))
	}
	for i, v := range r.Violations {
		if i == 3 {
			s += "; …"
			break
		}
		s += "; " + v.String()
	}
	return s
}

// Placement checks cell legality per die: no overlaps among placed
// standard cells sharing a die, everything inside the die outline, no
// standard cell over a same-die macro.
func Placement(rep *Report, d *netlist.Design, die geom.Rect) {
	type obj struct {
		r    geom.Rect
		name string
		die  netlist.Die
	}
	var cells []obj
	var macros []obj
	for _, inst := range d.Instances {
		if !inst.Placed {
			continue
		}
		rep.Checked.Instances++
		b := inst.Bounds()
		if !die.ContainsRect(b.Expand(-1e-7)) {
			rep.add("off-die", "%s at %v outside %v", inst.Name, b, die)
		}
		if b.W() <= 1e-9 || b.H() <= 1e-9 {
			rep.add("zero-area", "%s has degenerate footprint %v", inst.Name, b)
			continue
		}
		if inst.IsMacro() {
			macros = append(macros, obj{b, inst.Name, inst.Die})
			continue
		}
		if inst.Master.Kind == cell.KindFiller {
			continue
		}
		cells = append(cells, obj{b, inst.Name, inst.Die})
	}
	// Sweep for overlaps within each die.
	sort.Slice(cells, func(i, j int) bool { return cells[i].r.Lx < cells[j].r.Lx })
	for i := 0; i < len(cells); i++ {
		for j := i + 1; j < len(cells) && cells[j].r.Lx < cells[i].r.Ux-1e-9; j++ {
			if cells[i].die == cells[j].die &&
				cells[i].r.Expand(-1e-7).Intersects(cells[j].r) {
				rep.add("overlap", "%s overlaps %s", cells[i].name, cells[j].name)
			}
		}
	}
	// Cells over same-die macros.
	for _, c := range cells {
		for _, m := range macros {
			if c.die == m.die && m.r.Expand(-1e-7).Intersects(c.r) {
				rep.add("overlap", "%s sits on macro %s", c.name, m.name)
			}
		}
	}
}

// Connectivity checks that every non-clock net's route connects all of
// its pins (graph reachability over the route segments).
func Connectivity(rep *Report, d *netlist.Design, res *route.Result) {
	for _, n := range d.Nets {
		if n.Clock || len(n.Sinks) == 0 {
			continue
		}
		rep.Checked.Nets++
		if n.ID >= len(res.Routes) || res.Routes[n.ID] == nil {
			rep.add("open-net", "%s has no route", n.Name)
			continue
		}
		r := res.Routes[n.ID]
		adj := map[route.Node][]route.Node{}
		link := func(a, b route.Node) {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		for _, s := range r.Segments {
			if s.IsVia() {
				link(s.A, s.B)
				continue
			}
			prev := s.A
			step := route.Node{X: sign(s.B.X - s.A.X), Y: sign(s.B.Y - s.A.Y)}
			for prev != s.B {
				next := route.Node{X: prev.X + step.X, Y: prev.Y + step.Y, L: prev.L}
				link(prev, next)
				prev = next
			}
		}
		if len(r.PinNode) == 0 {
			rep.add("open-net", "%s lost its pin nodes", n.Name)
			continue
		}
		seen := map[route.Node]bool{r.PinNode[0]: true}
		queue := []route.Node{r.PinNode[0]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		for i, pn := range r.PinNode {
			if !seen[pn] {
				rep.add("open-net", "%s pin %d unreachable from driver", n.Name, i)
			}
		}
	}
}

func sign(v int) int {
	if v > 0 {
		return 1
	}
	if v < 0 {
		return -1
	}
	return 0
}

// BumpRules checks F2F bump spacing against the bonding pitch: no two
// bumps closer than the minimum pitch (bumps sit on the bonding grid).
func BumpRules(rep *Report, bumps []geom.Point, f2f tech.F2FSpec) {
	rep.Checked.Bumps = len(bumps)
	// Grid hash at the pitch for neighbour lookup.
	cellOf := func(p geom.Point) [2]int {
		return [2]int{int(p.X / f2f.Pitch), int(p.Y / f2f.Pitch)}
	}
	byCell := map[[2]int][]geom.Point{}
	for _, b := range bumps {
		byCell[cellOf(b)] = append(byCell[cellOf(b)], b)
	}
	minD := f2f.Pitch - 1e-6
	for _, b := range bumps {
		c := cellOf(b)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, o := range byCell[[2]int{c[0] + dx, c[1] + dy}] {
					if o == b {
						continue
					}
					if b.Dist(o) < minD {
						rep.add("bump-pitch", "bumps %v and %v at %.3f µm < pitch %.3f",
							b, o, b.Dist(o), f2f.Pitch)
					}
				}
			}
		}
	}
}

// PortAlignment checks the §V-1 tiling invariant: for each port whose
// name encodes an edge+direction (noc…_N_out_b etc.), its abutment
// partner exists and shares the cross-coordinate.
func PortAlignment(rep *Report, d *netlist.Design, die geom.Rect, pairs map[string]string) {
	for name, partner := range pairs {
		a := d.Port(name)
		b := d.Port(partner)
		if a == nil || b == nil {
			rep.add("port-align", "pair %s/%s missing", name, partner)
			continue
		}
		onNS := a.Loc.Y == die.Ly || a.Loc.Y == die.Uy
		if onNS {
			if a.Loc.X != b.Loc.X {
				rep.add("port-align", "%s x=%.3f vs %s x=%.3f", name, a.Loc.X, partner, b.Loc.X)
			}
		} else if a.Loc.Y != b.Loc.Y {
			rep.add("port-align", "%s y=%.3f vs %s y=%.3f", name, a.Loc.Y, partner, b.Loc.Y)
		}
	}
}

// Full runs every applicable check on a finished implementation.
// bumps and pairs may be nil for 2D designs / untiled SoCs.
func Full(d *netlist.Design, die geom.Rect, res *route.Result,
	bumps []geom.Point, f2f tech.F2FSpec, pairs map[string]string) *Report {

	rep := &Report{}
	Placement(rep, d, die)
	if res != nil {
		Connectivity(rep, d, res)
	}
	if len(bumps) > 0 {
		BumpRules(rep, bumps, f2f)
	}
	if len(pairs) > 0 {
		PortAlignment(rep, d, die, pairs)
	}
	return rep
}
