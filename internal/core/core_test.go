package core

import (
	"strings"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

func TestEditMacroForMacroDie(t *testing.T) {
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 2048, Bits: 32})
	if err != nil {
		t.Fatal(err)
	}
	e, err := EditMacroForMacroDie(sram, 0.19, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Footprint shrunk to filler size.
	if e.Width != 0.19 || e.Height != 1.2 {
		t.Fatalf("footprint %v×%v, want filler size", e.Width, e.Height)
	}
	// Pin layers remapped, geometry untouched.
	for i, p := range e.Pins {
		if p.Layer != "M4_MD" {
			t.Fatalf("pin %s layer %s, want M4_MD", p.Name, p.Layer)
		}
		if p.Offset != sram.Pins[i].Offset {
			t.Fatalf("pin %s offset moved", p.Name)
		}
	}
	// Obstructions remapped at original extents.
	for i, o := range e.Obstructions {
		if !strings.HasSuffix(o.Layer, "_MD") {
			t.Fatalf("obstruction layer %s not remapped", o.Layer)
		}
		if o.Rect != sram.Obstructions[i].Rect {
			t.Fatal("obstruction rect changed")
		}
	}
	// Original untouched.
	if sram.Width == 0.19 || sram.Pins[0].Layer != "M4" {
		t.Fatal("EditMacroForMacroDie mutated the original master")
	}
	// Double-editing rejected.
	if _, err := EditMacroForMacroDie(e, 0.19, 1.2); err == nil {
		t.Fatal("edited macro accepted twice")
	}
	// Non-macros rejected.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	if _, err := EditMacroForMacroDie(lib.MustCell("INV_X1"), 0.19, 1.2); err == nil {
		t.Fatal("standard cell accepted")
	}
}

func prepared(t *testing.T) (*MoLDesign, *piton.Tile, floorplan.Sizing) {
	t.Helper()
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := floorplan.PlaceMacros(d, sz.Die3D, floorplan.StyleMoL); err != nil {
		t.Fatal(err)
	}
	floorplan.AssignPorts(tile, sz.Die3D)
	logic, _ := tech.NewBEOL28("logic", 6)
	macro, _ := tech.NewBEOL28("macro", 6)
	md, err := PrepareMoL(d, logic, macro, tech.DefaultF2F(), sz.Die3D, 0.19, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return md, tile, sz
}

func TestPrepareMoL(t *testing.T) {
	md, tile, _ := prepared(t)
	d := tile.Design
	if md.EditedMacros != len(d.Macros()) {
		t.Fatalf("edited %d of %d macros", md.EditedMacros, len(d.Macros()))
	}
	// Combined stack: 6 + 6 layers, F2F via between.
	if md.Combined.NumLayers() != 12 || md.Combined.F2FViaIndex() != 5 {
		t.Fatalf("combined stack wrong: %v", md.Combined)
	}
	// No placement blockages: all macros are on the macro die with
	// filler footprints.
	if len(md.FP.PlaceBlk) != 0 {
		t.Fatalf("MoL floorplan has %d placement blockages", len(md.FP.PlaceBlk))
	}
	// Routing blockages on _MD layers only, 4 per SRAM.
	if len(md.FP.RouteBlk) != 4*len(d.Macros()) {
		t.Fatalf("route blockages = %d", len(md.FP.RouteBlk))
	}
	for _, rb := range md.FP.RouteBlk {
		if !strings.HasSuffix(rb.Layer, "_MD") {
			t.Fatalf("blockage on logic-die layer %s", rb.Layer)
		}
	}
	// Macro pins remain at their absolute floorplan locations despite
	// the footprint shrink.
	m := d.Macros()[0]
	pl := m.PinLoc("CLK")
	if !md.FP.Die.Contains(pl) {
		t.Fatalf("macro pin at %v outside die", pl)
	}
	if pl.X <= m.Loc.X {
		t.Fatal("pin offset lost by shrink")
	}
	// Separated layer sets share the F2F layer.
	if md.LogicLayers[len(md.LogicLayers)-1] != tech.F2FLayerName ||
		md.MacroLayers[len(md.MacroLayers)-1] != tech.F2FLayerName {
		t.Fatal("F2F layer missing from separated sets")
	}
}

func TestPrepareMoLRequiresFloorplan(t *testing.T) {
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	for _, m := range d.Macros() {
		m.Die = netlist.MacroDie // assigned but never placed
	}
	logic, _ := tech.NewBEOL28("logic", 6)
	macro, _ := tech.NewBEOL28("macro", 6)
	if _, err := PrepareMoL(d, logic, macro, tech.DefaultF2F(),
		geom.R(0, 0, 100, 100), 0.19, 1.2); err == nil {
		t.Fatal("unplaced macros accepted")
	}
}

func TestSeparateProducesBothParts(t *testing.T) {
	md, tile, sz := prepared(t)
	d := tile.Design
	// Quick placement-free routing: scatter std cells on a coarse grid
	// (valid, reasonably spread routes without running the placer).
	cells := d.StdCells()
	nx := 96
	inner := sz.Die3D.Expand(-10)
	for i, inst := range cells {
		ix, iy := i%nx, (i/nx)%nx
		inst.Loc = geom.Pt(
			inner.Lx+inner.W()*float64(ix)/float64(nx),
			inner.Ly+inner.H()*float64(iy)/float64(nx),
		)
		inst.Placed = true
	}
	db := route.NewDB(sz.Die3D, md.Combined, md.FP.RouteBlk, route.Options{GCellPitch: 15, MaxIters: 1})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.F2FBumps == 0 {
		t.Fatal("MoL routing produced no F2F bumps despite macro-die pins")
	}
	logic, macro, err := Separate(md, res, db)
	if err != nil {
		t.Fatal(err)
	}
	if logic.StdCells == 0 || macro.Macros != len(d.Macros()) {
		t.Fatalf("separation counts: %d cells / %d macros", logic.StdCells, macro.Macros)
	}
	// Both parts share the same bump list.
	if len(logic.Bumps) != len(macro.Bumps) || len(logic.Bumps) != res.F2FBumps {
		t.Fatalf("bump lists: %d / %d, routed %d", len(logic.Bumps), len(macro.Bumps), res.F2FBumps)
	}
	// Wire separation: _MD wirelength only in the macro part.
	for name := range logic.WirelengthByLayer {
		if strings.HasSuffix(name, "_MD") {
			t.Fatalf("logic part carries %s", name)
		}
	}
	for name := range macro.WirelengthByLayer {
		if !strings.HasSuffix(name, "_MD") {
			t.Fatalf("macro part carries %s", name)
		}
	}
}

func TestCellForDie(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	inv := lib.MustCell("INV_X1")
	same := CellForDie(inv, netlist.LogicDie)
	if same != inv {
		t.Fatal("logic-die view must be the original master")
	}
	md := CellForDie(inv, netlist.MacroDie)
	if md == inv || md.Pins[0].Layer != "M1_MD" {
		t.Fatalf("macro-die view wrong: %+v", md.Pins[0])
	}
	if inv.Pins[0].Layer != "M1" {
		t.Fatal("CellForDie mutated original")
	}
}

func TestRemapAbstractForMacroDie(t *testing.T) {
	logic, _ := tech.NewBEOL28("logic", 6)
	macro, _ := tech.NewBEOL28("macro", 6)
	combined, err := tech.Combine(logic, macro, tech.DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	abs := &cell.Cell{
		Name: "blk_abs", Kind: cell.KindMacro, Width: 40, Height: 40,
		Pins: []cell.Pin{
			{Name: "CK", Dir: cell.DirIn, Clock: true, Layer: "M6", Offset: geom.Pt(0, 20)},
			{Name: "Q", Dir: cell.DirOut, Layer: "M4", Offset: geom.Pt(40, 20), ClkQ: 80},
		},
		Obstructions: []cell.Obstruction{
			{Layer: "M2", Rect: geom.R(0, 0, 40, 10)},
		},
		Abstract: &cell.AbstractInfo{SourceFlow: "2D", MinPeriodPs: 500},
	}
	got, err := RemapAbstractForMacroDie(abs, combined)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "blk_abs_MD" {
		t.Fatalf("name %s", got.Name)
	}
	if got.Pins[0].Layer != "M6_MD" || got.Pins[1].Layer != "M4_MD" {
		t.Fatalf("pin layers %s/%s not remapped", got.Pins[0].Layer, got.Pins[1].Layer)
	}
	if got.Obstructions[0].Layer != "M2_MD" {
		t.Fatalf("obstruction layer %s not remapped", got.Obstructions[0].Layer)
	}
	// Timing arcs and provenance ride along untouched; the source is
	// not mutated.
	if got.Pins[1].ClkQ != 80 || got.Abstract.MinPeriodPs != 500 {
		t.Fatal("remap lost timing data")
	}
	if abs.Pins[0].Layer != "M6" || abs.Obstructions[0].Layer != "M2" {
		t.Fatal("remap mutated its input")
	}
	// A non-abstract macro is rejected: the remap is only defined for
	// hardened abstracts.
	plain := &cell.Cell{Name: "m", Kind: cell.KindMacro}
	if _, err := RemapAbstractForMacroDie(plain, combined); err == nil {
		t.Fatal("remap accepted a cell without AbstractInfo")
	}
}
