// Package core implements the Macro-3D methodology itself — the
// paper's contribution (§IV). The flow's trick is to let a standard 2D
// engine perform a *true* 3D placement and routing by editing only the
// technology views and macro abstracts:
//
//  1. Combined BEOL: the full two-die metal stack — logic-die metals,
//     the F2F_VIA bonding layer, then the macro-die metals renamed
//     with the "_MD" suffix — handed to P&R and extraction as one
//     stack (tech.Combine).
//  2. Macro editing: every macro assigned to the macro die keeps its
//     pin and obstruction (x, y) geometry but has the layers remapped
//     onto the _MD names, and its substrate footprint shrunk to a
//     filler cell's (commercial tools do not allow zero area) so it
//     consumes no logic-die placement area.
//  3. Superimposition: the macro-die floorplan and logic-die floorplan
//     overlay into a single 2D floorplan over the combined stack.
//  4. Separation: after sign-off, the single design splits into the
//     two production layouts; the F2F_VIA layer appears in both.
//
// Because the engine sees the physical truth, its P&R and PPA results
// are *directly* valid for the 3D stack — no tier partitioning, via
// planning or incremental rerouting afterwards.
package core

import (
	"fmt"
	"strings"

	"macro3d/internal/cell"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// EditMacroForMacroDie returns the Macro-3D view of a macro master:
// pin layers and obstruction layers renamed with the _MD suffix at
// unchanged (x, y) geometry, and the substrate footprint shrunk to the
// filler-cell size. The original master is not modified.
func EditMacroForMacroDie(m *cell.Cell, fillerW, fillerH float64) (*cell.Cell, error) {
	if m.Kind != cell.KindMacro {
		return nil, fmt.Errorf("core: %s is not a macro", m.Name)
	}
	if strings.HasSuffix(m.Name, "_MD") {
		return nil, fmt.Errorf("core: %s already edited", m.Name)
	}
	e := m.Clone()
	e.Name = m.Name + "_MD"
	for i := range e.Pins {
		if e.Pins[i].Layer != "" && !strings.HasSuffix(e.Pins[i].Layer, tech.MDSuffix) {
			e.Pins[i].Layer += tech.MDSuffix
		}
	}
	for i := range e.Obstructions {
		if !strings.HasSuffix(e.Obstructions[i].Layer, tech.MDSuffix) {
			e.Obstructions[i].Layer += tech.MDSuffix
		}
	}
	// Shrink the substrate footprint only; pins/obstructions keep
	// their absolute offsets (they live in the other die's metal).
	e.Width = fillerW
	e.Height = fillerH
	return e, nil
}

// RemapAbstractForMacroDie rewrites a hardened abstract's layer
// geometry onto the _MD layers of a combined stack, so a block
// hardened on a plain single-die stack (e.g. by the 2D flow) can live
// on the macro die of an F2F stack. Unlike EditMacroForMacroDie the
// mapping is validated layer by layer against the combined stack — an
// abstract hardened with more metals than the macro die offers is an
// error, not a silent rename — and the substrate footprint is kept
// (the abstract *is* the macro-die content, not a logic-die stand-in).
// The original master is not modified.
func RemapAbstractForMacroDie(m *cell.Cell, combined *tech.BEOL) (*cell.Cell, error) {
	if m.Abstract == nil {
		return nil, fmt.Errorf("core: %s is not a hardened abstract", m.Name)
	}
	e := m.Clone()
	if !strings.HasSuffix(e.Name, tech.MDSuffix) {
		e.Name = m.Name + tech.MDSuffix
	}
	for i := range e.Pins {
		if e.Pins[i].Layer == "" {
			continue
		}
		name, err := combined.MacroDieName(e.Pins[i].Layer)
		if err != nil {
			return nil, fmt.Errorf("core: abstract %s pin %s: %w", m.Name, e.Pins[i].Name, err)
		}
		e.Pins[i].Layer = name
	}
	for i := range e.Obstructions {
		name, err := combined.MacroDieName(e.Obstructions[i].Layer)
		if err != nil {
			return nil, fmt.Errorf("core: abstract %s obstruction %d: %w", m.Name, i, err)
		}
		e.Obstructions[i].Layer = name
	}
	return e, nil
}

// MoLDesign is a design prepared for single-pass 3D P&R.
type MoLDesign struct {
	Design   *netlist.Design
	Combined *tech.BEOL
	FP       *floorplan.Floorplan

	// Layer name sets of the separated production layouts.
	LogicLayers []string
	MacroLayers []string

	EditedMacros int
}

// PrepareMoL performs steps 1–3 of the methodology on a design whose
// macros have already been floorplanned (macro-die macros carry
// Die == MacroDie with fixed locations — floorplan.PlaceMacros with
// StyleMoL). logicBeol/macroBeol are the per-die stacks; die is the 3D
// footprint.
func PrepareMoL(d *netlist.Design, logicBeol, macroBeol *tech.BEOL, f2f tech.F2FSpec,
	die geom.Rect, fillerW, fillerH float64) (*MoLDesign, error) {

	combined, err := tech.Combine(logicBeol, macroBeol, f2f)
	if err != nil {
		return nil, err
	}
	ll, ml, err := tech.Separate(combined)
	if err != nil {
		return nil, err
	}

	md := &MoLDesign{
		Design:      d,
		Combined:    combined,
		LogicLayers: ll,
		MacroLayers: ml,
		FP:          &floorplan.Floorplan{Die: die},
	}

	// Edit every macro-die macro.
	for _, m := range d.Macros() {
		if m.Die != netlist.MacroDie {
			continue
		}
		if !m.Placed {
			return nil, fmt.Errorf("core: macro %s not floorplanned", m.Name)
		}
		edited, err := EditMacroForMacroDie(m.Master, fillerW, fillerH)
		if err != nil {
			return nil, err
		}
		m.Master = edited
		md.EditedMacros++
	}

	// Superimposed floorplan: logic-die macros still block placement;
	// macro-die macros (now filler-sized) do not. Routing blockages
	// from both dies land in one floorplan because the edited layers
	// are distinct.
	floorplan.BuildBlockages(md.FP, d, netlist.LogicDie)
	buildMacroDieBlockages(md.FP, d)
	return md, nil
}

// buildMacroDieBlockages adds the _MD routing obstructions of edited
// macros. The obstruction rects are stored in the master's local frame
// at their original (pre-shrink) extents.
func buildMacroDieBlockages(fp *floorplan.Floorplan, d *netlist.Design) {
	for _, m := range d.Macros() {
		if m.Die != netlist.MacroDie || !m.Placed {
			continue
		}
		for _, o := range m.Master.Obstructions {
			fp.RouteBlk = append(fp.RouteBlk, floorplan.RouteBlockage{
				Layer: o.Layer,
				Rect:  o.Rect.Translate(m.Loc),
			})
		}
	}
}

// DieLayout is one production layout produced by separation — the
// stand-in for a per-die GDSII stream.
type DieLayout struct {
	Name    string
	Die     netlist.Die
	Outline geom.Rect
	Layers  []string

	StdCells int
	Macros   int

	// WirelengthByLayer holds routed wire per layer present in this
	// die, µm.
	WirelengthByLayer map[string]float64

	// Bumps are the F2F bonding via locations (shared by both parts).
	Bumps []geom.Point
}

// Separate performs step 4: splitting the signed-off combined design
// into the two per-die layouts. Both receive the F2F_VIA bump
// locations.
func Separate(md *MoLDesign, routes *route.Result, db *route.DB) (logic, macro *DieLayout, err error) {
	d := md.Design
	logic = &DieLayout{
		Name: d.Name + "_logic_die", Die: netlist.LogicDie,
		Outline: md.FP.Die, Layers: md.LogicLayers,
		WirelengthByLayer: map[string]float64{},
	}
	macro = &DieLayout{
		Name: d.Name + "_macro_die", Die: netlist.MacroDie,
		Outline: md.FP.Die, Layers: md.MacroLayers,
		WirelengthByLayer: map[string]float64{},
	}

	// Substrate objects: all placed cells (and filler-sized macro
	// stand-ins) belong to the logic die; the real macros to the macro
	// die.
	for _, inst := range d.Instances {
		if inst.IsMacro() && inst.Die == netlist.MacroDie {
			macro.Macros++
			continue
		}
		if inst.IsMacro() {
			logic.Macros++
			continue
		}
		logic.StdCells++
	}

	// Wire geometry per layer.
	for li, l := range md.Combined.Layers {
		wl := routes.WLPerLayer[li]
		if l.MacroDie {
			macro.WirelengthByLayer[l.Name] = wl
		} else {
			logic.WirelengthByLayer[l.Name] = wl
		}
	}

	// Bump locations from F2F via crossings; both parts carry them.
	f2fIdx := md.Combined.F2FViaIndex()
	if f2fIdx < 0 {
		return nil, nil, fmt.Errorf("core: combined stack lost its F2F via")
	}
	seen := map[[2]int]int{}
	for _, r := range routes.Routes {
		if r == nil {
			continue
		}
		for _, s := range r.Segments {
			if !s.IsVia() {
				continue
			}
			lo := s.A.L
			if s.B.L < lo {
				lo = s.B.L
			}
			if lo != f2fIdx {
				continue
			}
			// Offset repeated bumps in a gcell onto the bump grid.
			key := [2]int{s.A.X, s.A.Y}
			k := seen[key]
			seen[key] = k + 1
			c := db.Grid.BinCenter(s.A.X, s.A.Y)
			pitch := md.Combined.Vias[f2fIdx].Pitch
			per := int(db.Grid.DX / pitch)
			if per < 1 {
				per = 1
			}
			off := geom.Pt(float64(k%per)*pitch, float64(k/per)*pitch)
			p := c.Add(off)
			logic.Bumps = append(logic.Bumps, p)
			macro.Bumps = append(macro.Bumps, p)
		}
	}
	return logic, macro, nil
}

// CellForDie returns a view of a standard-cell master for a given die
// of an F2F stack: macro-die copies get _MD pin layers. Used by the
// S2D/C2D baselines after tier partitioning (Macro-3D itself never
// needs this — its standard cells all live in the logic die, which is
// the heterogeneity the flow exploits).
func CellForDie(m *cell.Cell, die netlist.Die) *cell.Cell {
	if die == netlist.LogicDie {
		return m
	}
	e := m.Clone()
	e.Name = m.Name + "_MD"
	for i := range e.Pins {
		if e.Pins[i].Layer != "" && !strings.HasSuffix(e.Pins[i].Layer, tech.MDSuffix) {
			e.Pins[i].Layer += tech.MDSuffix
		}
	}
	for i := range e.Obstructions {
		if !strings.HasSuffix(e.Obstructions[i].Layer, tech.MDSuffix) {
			e.Obstructions[i].Layer += tech.MDSuffix
		}
	}
	return e
}
