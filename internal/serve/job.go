package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"macro3d/internal/flows"
	"macro3d/internal/obs"
)

// JobState is the lifecycle position of a job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the JSON body of POST /jobs: one flow run or one sweep.
type JobSpec struct {
	// Flow selects a single flow run: 2d, macro3d, s2d, bfs2d, c2d.
	// Mutually exclusive with Sweep.
	Flow string `json:"flow,omitempty"`

	// Sweep selects a multi-point experiment: pitch, blockage,
	// heterotech. Sweep points share stage-cache prefixes with each
	// other and with every other tenant's jobs.
	Sweep string `json:"sweep,omitempty"`

	// Config is the tile configuration: tiny, small (default), large.
	Config string `json:"config,omitempty"`

	Seed           uint64 `json:"seed,omitempty"`
	MacroDieMetals int    `json:"macro_die_metals,omitempty"`

	// Pitches / Resolutions override the swept points of the pitch and
	// blockage sweeps (empty = the experiment defaults).
	Pitches     []float64 `json:"pitches,omitempty"`
	Resolutions []float64 `json:"resolutions,omitempty"`

	// Workers is the per-job engine worker count (flows -j). Default 1:
	// a multi-tenant daemon gets its parallelism across jobs, not
	// within them. Results are bit-identical at any setting.
	Workers int `json:"workers,omitempty"`

	// TimeoutMS bounds the job's wall clock; 0 inherits the server
	// default. The server's JobTimeout is a hard ceiling either way.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	KeepGoing bool `json:"keep_going,omitempty"` // sweeps: skip failed points
	Verify    bool `json:"verify,omitempty"`     // independent sign-off verification

	// Fault injects a daemon-path fault (testing only; rejected unless
	// the server runs with AllowFaults): "panic" makes a stage panic
	// mid-job, "hang" makes a stage ignore cancellation.
	Fault string `json:"fault,omitempty"`
}

// validate normalizes and checks the spec at admission, so malformed
// submissions are rejected with 400 before consuming a queue slot.
func (sp *JobSpec) validate(allowFaults bool) error {
	if (sp.Flow == "") == (sp.Sweep == "") {
		return fmt.Errorf("spec: exactly one of flow or sweep is required")
	}
	switch sp.Flow {
	case "", "2d", "macro3d", "s2d", "bfs2d", "c2d":
	default:
		return fmt.Errorf("spec: unknown flow %q (want 2d, macro3d, s2d, bfs2d or c2d)", sp.Flow)
	}
	switch sp.Sweep {
	case "", "pitch", "blockage", "heterotech":
	default:
		return fmt.Errorf("spec: unknown sweep %q (want pitch, blockage or heterotech)", sp.Sweep)
	}
	if sp.Config == "" {
		sp.Config = "small"
	}
	switch sp.Config {
	case "tiny", "small", "large":
	default:
		return fmt.Errorf("spec: unknown config %q (want tiny, small or large)", sp.Config)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Workers <= 0 {
		sp.Workers = 1
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("spec: negative timeout_ms")
	}
	switch sp.Fault {
	case "":
	case "panic", "hang":
		if !allowFaults {
			return fmt.Errorf("spec: fault injection is disabled on this server")
		}
	default:
		return fmt.Errorf("spec: unknown fault %q (want panic or hang)", sp.Fault)
	}
	return nil
}

// StageFailure is the JSON view of a typed *flows.StageError surfaced
// in a failed job record.
type StageFailure struct {
	Flow     string `json:"flow,omitempty"`
	Stage    string `json:"stage"`
	Seed     uint64 `json:"seed"`
	Attempt  int    `json:"attempt,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
}

// Job is one submitted unit of work. All fields behind mu; readers go
// through View/State.
type Job struct {
	id   string
	spec JobSpec

	rec    *obs.Recorder // per-job recorder; its JSONL stream feeds events
	events *tailBuffer

	mu        sync.Mutex
	state     JobState
	err       string
	stageErr  *StageFailure
	result    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancelReq bool
	cancel    func()
	abandoned bool

	done chan struct{} // closed exactly once, on reaching a terminal state
}

func newJob(id string, spec JobSpec) *Job {
	j := &Job{
		id:        id,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		events:    newTailBuffer(maxEventBytes),
		rec:       obs.New(),
		done:      make(chan struct{}),
	}
	j.rec.SetSink(j.events)
	return j
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the normalized submission.
func (j *Job) Spec() JobSpec { return j.spec }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events returns the job's JSONL observability stream so far.
func (j *Job) Events() []byte { return j.events.Snapshot() }

// claimRunning moves queued → running. It reports false when the job
// was canceled while queued (the worker must skip it).
func (j *Job) claimRunning(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// requestCancel flags the job and fires its context (when running).
// Reports whether the request had any effect. A queued job transitions
// to canceled immediately — it will never start.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelReq = true
	if j.state == StateQueued {
		j.state = StateCanceled
		j.err = "canceled before start"
		j.finished = time.Now()
		j.mu.Unlock()
		close(j.done)
		return true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// finish moves the job to a terminal state exactly once; late results
// from an abandoned runner goroutine are dropped. Returns the state
// actually reached ("" if the job was already terminal).
func (j *Job) finish(state JobState, result, errMsg string, stageErr *StageFailure, abandoned bool) JobState {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return ""
	}
	j.state = state
	j.result = result
	j.err = errMsg
	j.stageErr = stageErr
	j.abandoned = abandoned
	j.finished = time.Now()
	j.mu.Unlock()
	j.rec.Close() // flush the event stream; idempotent
	close(j.done)
	return state
}

// times snapshots the job's lifecycle timestamps (zero when the
// corresponding transition has not happened).
func (j *Job) times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// canceledRequested reports whether Cancel was called on the job.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}

// JobView is the JSON rendering of a job record.
type JobView struct {
	ID          string        `json:"id"`
	State       JobState      `json:"state"`
	Spec        JobSpec       `json:"spec"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	DurationMS  int64         `json:"duration_ms,omitempty"`
	Error       string        `json:"error,omitempty"`
	StageError  *StageFailure `json:"stage_error,omitempty"`
	Abandoned   bool          `json:"abandoned,omitempty"`
	Result      string        `json:"result,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		SubmittedAt: j.submitted,
		Error:       j.err,
		StageError:  j.stageErr,
		Abandoned:   j.abandoned,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() {
			v.DurationMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	return v
}

// stageFailure extracts the typed stage diagnostics from a flow error
// chain, nil when the error carries none.
func stageFailure(err error) *StageFailure {
	var se *flows.StageError
	if !errors.As(err, &se) {
		return nil
	}
	return &StageFailure{
		Flow:     se.Flow,
		Stage:    se.Stage,
		Seed:     se.Seed,
		Attempt:  se.Attempt,
		Panicked: len(se.Stack) > 0,
	}
}

// maxEventBytes bounds one job's buffered JSONL event stream; beyond
// it the stream stops growing (the bound keeps a hostile or huge job
// from holding the daemon's memory hostage).
const maxEventBytes = 4 << 20

// tailBuffer is an append-only in-memory byte log with a hard cap.
// Writers (the job's obs sink) append; readers snapshot or poll from
// an offset. Safe for concurrent use.
type tailBuffer struct {
	mu        sync.Mutex
	buf       []byte
	max       int
	truncated bool
}

func newTailBuffer(max int) *tailBuffer { return &tailBuffer{max: max} }

// Write implements io.Writer. Past the cap, input is dropped (never an
// error — the obs sink must not poison the flow over a full buffer).
func (b *tailBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	if room := b.max - len(b.buf); room > 0 {
		if len(p) > room {
			b.buf = append(b.buf, p[:room]...)
			b.truncated = true
		} else {
			b.buf = append(b.buf, p...)
		}
	} else if len(p) > 0 {
		b.truncated = true
	}
	b.mu.Unlock()
	return len(p), nil
}

// Snapshot returns a copy of the buffered bytes.
func (b *tailBuffer) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out
}

// From returns a copy of the bytes at and after off (for follow mode).
func (b *tailBuffer) From(off int) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off >= len(b.buf) {
		return nil
	}
	out := make([]byte, len(b.buf)-off)
	copy(out, b.buf[off:])
	return out
}

// Len returns the buffered byte count.
func (b *tailBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}
