package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"macro3d/internal/flows"
	"macro3d/internal/obs/trace"
	"macro3d/internal/stash"
)

// stubSpec is a valid spec for stub-runner tests (the stub never looks
// at it, but validation does).
func stubSpec() JobSpec { return JobSpec{Flow: "2d", Config: "tiny"} }

// gateRunner blocks each job until the test releases it, recording
// execution order.
type gateRunner struct {
	mu    sync.Mutex
	order []string
	gate  chan struct{}
}

func newGateRunner() *gateRunner { return &gateRunner{gate: make(chan struct{})} }

func (g *gateRunner) run(ctx context.Context, job *Job) (string, error) {
	g.mu.Lock()
	g.order = append(g.order, job.ID())
	g.mu.Unlock()
	select {
	case <-g.gate:
		return "ok", nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

func (g *gateRunner) ran() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

func shutdownClean(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestQueueFIFO submits jobs to a single worker and asserts they
// execute in submission order (FIFO fairness — no tenant's job jumps
// the queue).
func TestQueueFIFO(t *testing.T) {
	g := newGateRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, Runner: g.run})
	var submitted []string
	for i := 0; i < 5; i++ {
		job, err := s.Submit(stubSpec())
		if err != nil {
			t.Fatal(err)
		}
		submitted = append(submitted, job.ID())
	}
	close(g.gate)
	for _, id := range submitted {
		<-s.Job(id).Done()
	}
	ran := g.ran()
	if fmt.Sprint(ran) != fmt.Sprint(submitted) {
		t.Errorf("execution order %v, want submission order %v", ran, submitted)
	}
	for _, id := range submitted {
		if st := s.Job(id).State(); st != StateDone {
			t.Errorf("job %s state %s, want done", id, st)
		}
	}
	shutdownClean(t, s)
}

// TestQueueOverflow fills worker and queue capacity and asserts the
// next submission is rejected with ErrQueueFull — admission control,
// not unbounded buffering. Freeing a slot re-admits.
func TestQueueOverflow(t *testing.T) {
	g := newGateRunner()
	s := New(Config{Workers: 1, QueueDepth: 2, Runner: g.run})
	// Fill: 1 running + 2 queued. The worker may not have picked up the
	// first job yet, so allow one extra submit before asserting.
	var jobs []*Job
	deadline := time.Now().Add(5 * time.Second)
	for len(jobs) < 3 {
		job, err := s.Submit(stubSpec())
		if err == nil {
			jobs = append(jobs, job)
			continue
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("could not fill queue")
		}
		time.Sleep(time.Millisecond)
	}
	// Wait until the worker has claimed one, so queue depth is exactly 2.
	waitFor(t, func() bool { return len(g.ran()) == 1 })
	if _, err := s.Submit(stubSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	close(g.gate) // drain
	for _, j := range jobs {
		<-j.Done()
	}
	// Capacity freed: submissions are accepted again.
	job, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	<-job.Done()
	shutdownClean(t, s)
}

// TestCancelQueuedJobNeverRuns cancels a job while it waits in the
// queue and asserts it transitions straight to canceled and its runner
// is never invoked.
func TestCancelQueuedJobNeverRuns(t *testing.T) {
	g := newGateRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: g.run})
	blocker, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.ran()) == 1 })
	queued, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	<-queued.Done()
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("canceled queued job state %s, want canceled", st)
	}
	close(g.gate)
	<-blocker.Done()
	shutdownClean(t, s)
	for _, id := range g.ran() {
		if id == queued.ID() {
			t.Error("canceled queued job was executed")
		}
	}
}

// TestCancelRunningJob cancels an in-flight job: its context fires and
// the job record lands in canceled, not failed.
func TestCancelRunningJob(t *testing.T) {
	g := newGateRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: g.run})
	job, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.ran()) == 1 })
	if _, err := s.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != StateCanceled {
		t.Fatalf("state %s, want canceled", st)
	}
	shutdownClean(t, s)
}

// TestCancelUnknownJob asserts cancel of a bogus ID is a clean error.
func TestCancelUnknownJob(t *testing.T) {
	s := New(Config{Workers: 1, Runner: func(context.Context, *Job) (string, error) { return "", nil }})
	if _, err := s.Cancel("nope"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
	shutdownClean(t, s)
}

// TestDrainCompletesBacklog asserts Shutdown finishes queued jobs
// before returning, and rejects new submissions with ErrDraining.
func TestDrainCompletesBacklog(t *testing.T) {
	var ran int
	var mu sync.Mutex
	s := New(Config{Workers: 1, QueueDepth: 8, Runner: func(ctx context.Context, job *Job) (string, error) {
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		ran++
		mu.Unlock()
		return "ok", nil
	}})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		job, err := s.Submit(stubSpec())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := s.Submit(stubSpec()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: err = %v, want ErrDraining", err)
	}
	mu.Lock()
	if ran != 4 {
		t.Errorf("drain ran %d jobs, want all 4", ran)
	}
	mu.Unlock()
	for _, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Errorf("job %s state %s after drain, want done", j.ID(), st)
		}
	}
}

// TestShutdownDeadlineAbandonsHung gives Shutdown a deadline shorter
// than a job that ignores its context: Shutdown must return (with an
// error), the job must be recorded failed+abandoned — a bounded stop,
// not a hang.
func TestShutdownDeadlineAbandonsHung(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, AbandonGrace: 50 * time.Millisecond,
		Runner: func(ctx context.Context, job *Job) (string, error) {
			<-release // ignores ctx entirely
			return "late", nil
		}})
	defer close(release)
	job, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.State() == StateRunning })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil with a hung job in flight")
	}
	<-job.Done()
	v := job.View()
	if v.State != StateFailed || !v.Abandoned {
		t.Errorf("hung job state=%s abandoned=%v, want failed/true", v.State, v.Abandoned)
	}
}

// TestPanicIsolation submits a panicking job between two good ones:
// the panicking job fails with the panic recorded, the neighbours and
// the server are untouched.
func TestPanicIsolation(t *testing.T) {
	n := 0
	var mu sync.Mutex
	s := New(Config{Workers: 1, QueueDepth: 8, Runner: func(ctx context.Context, job *Job) (string, error) {
		mu.Lock()
		n++
		me := n
		mu.Unlock()
		if me == 2 {
			panic("injected runner panic")
		}
		return "ok", nil
	}})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := s.Submit(stubSpec())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	states := []JobState{jobs[0].State(), jobs[1].State(), jobs[2].State()}
	want := []JobState{StateDone, StateFailed, StateDone}
	for i := range states {
		if states[i] != want[i] {
			t.Errorf("job %d state %s, want %s", i, states[i], want[i])
		}
	}
	if v := jobs[1].View(); v.Error == "" {
		t.Error("panicked job has no error message")
	}
	// Server still serves: one more round-trip.
	job, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	<-job.Done()
	if job.State() != StateDone {
		t.Errorf("post-panic job state %s, want done", job.State())
	}
	shutdownClean(t, s)
}

// TestJobTimeoutAbandonsHang runs a job that sleeps through its
// context with a short per-job timeout: the job is abandoned after the
// grace period and the worker slot is freed for the next job.
func TestJobTimeoutAbandonsHang(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Workers: 1, AbandonGrace: 50 * time.Millisecond,
		Runner: func(ctx context.Context, job *Job) (string, error) {
			if job.Spec().TimeoutMS != 0 {
				<-release // the hung job ignores cancellation
				return "late", nil
			}
			return "ok", nil
		}})
	spec := stubSpec()
	spec.TimeoutMS = 50
	hung, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-hung.Done()
	v := hung.View()
	if v.State != StateFailed || !v.Abandoned {
		t.Fatalf("hung job state=%s abandoned=%v, want failed/true", v.State, v.Abandoned)
	}
	// The worker survived the abandonment and still takes jobs.
	next, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-next.Done()
	if next.State() != StateDone {
		t.Errorf("job after abandoned hang: state %s, want done", next.State())
	}
	shutdownClean(t, s)
}

// TestStageErrorSurfaced asserts a typed flow failure lands in the job
// record with its stage diagnostics.
func TestStageErrorSurfaced(t *testing.T) {
	s := New(Config{Workers: 1, Runner: func(ctx context.Context, job *Job) (string, error) {
		return "", &flows.StageError{Flow: "2D", Stage: flows.StagePlace, Seed: 7, Attempt: 1,
			Cause: errors.New("boom"), Stack: []byte("stack")}
	}})
	job, err := s.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	v := job.View()
	if v.State != StateFailed {
		t.Fatalf("state %s, want failed", v.State)
	}
	if v.StageError == nil {
		t.Fatal("typed stage failure missing from the record")
	}
	if v.StageError.Stage != flows.StagePlace || v.StageError.Seed != 7 || !v.StageError.Panicked {
		t.Errorf("stage failure = %+v", v.StageError)
	}
	shutdownClean(t, s)
}

// TestSpecValidation spot-checks admission-time validation.
func TestSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1, Runner: func(context.Context, *Job) (string, error) { return "", nil }})
	cases := []JobSpec{
		{},                              // neither flow nor sweep
		{Flow: "2d", Sweep: "pitch"},    // both
		{Flow: "warp"},                  // unknown flow
		{Sweep: "voltage"},              // unknown sweep
		{Flow: "2d", Config: "huge"},    // unknown config
		{Flow: "2d", TimeoutMS: -1},     // negative timeout
		{Flow: "2d", Fault: "panic"},    // faults not allowed here
		{Flow: "2d", Fault: "segfault"}, // unknown fault
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d: invalid spec %+v was admitted", i, spec)
		}
	}
	if got := s.jobCounts(); len(got) != 0 {
		t.Errorf("rejected specs consumed job slots: %v", got)
	}
	shutdownClean(t, s)
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceDirSchedulingTrace runs jobs on a traced server and checks
// the Shutdown-time scheduling trace: one track per job, each carrying
// a queue-wait and a run slice, in a file Perfetto can load — plus the
// serve_queue_wait_ms / serve_job_run_ms histograms observing every
// executed job.
func TestTraceDirSchedulingTrace(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, TraceDir: dir, Runner: func(ctx context.Context, job *Job) (string, error) {
		time.Sleep(2 * time.Millisecond)
		return "ok", nil
	}})
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := s.Submit(stubSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, job.ID())
	}
	for _, id := range ids {
		<-s.Job(id).Done()
	}
	shutdownClean(t, s)

	f, err := os.Open(filepath.Join(dir, "serve.trace.json"))
	if err != nil {
		t.Fatalf("scheduling trace not written: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadChrome(f)
	if err != nil {
		t.Fatalf("scheduling trace unreadable: %v", err)
	}
	byName := map[string][]trace.Slice{}
	for _, trk := range tr.Tracks() {
		byName[trk.Name()] = trk.Slices()
	}
	for _, id := range ids {
		slices := byName[id]
		if len(slices) != 2 {
			t.Fatalf("job %s track has %d slices, want queue-wait + run", id, len(slices))
		}
		if got, want := slices[0].Name, id+"/queue-wait"; got != want {
			t.Errorf("job %s slice 0 named %q, want %q", id, got, want)
		}
		if got, want := slices[1].Name, id+"/run"; got != want {
			t.Errorf("job %s slice 1 named %q, want %q", id, got, want)
		}
		if slices[1].Start < slices[0].End() {
			t.Errorf("job %s run starts before its queue wait ends", id)
		}
	}

	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"serve_queue_wait_ms_count 3", "serve_job_run_ms_count 3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics lacks %q:\n%s", want, buf.String())
		}
	}
}

// TestSyncStashMetricsExportsHardenCounters checks that the shared
// cache's hardened-abstract hit/miss counters reach the server-wide
// registry the /metrics endpoints render.
func TestSyncStashMetricsExportsHardenCounters(t *testing.T) {
	cache, err := stash.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Cache: cache, Runner: func(ctx context.Context, job *Job) (string, error) {
		return "ok", nil
	}})
	defer shutdownClean(t, s)
	cache.NoteHarden(false)
	cache.NoteHarden(true)
	cache.NoteHarden(true)
	s.syncStashMetrics()
	s.syncStashMetrics() // idempotent: deltas, not double counts
	if got := s.hardenHits.Value(); got != 2 {
		t.Errorf("stash_harden_hits_total = %d, want 2", got)
	}
	if got := s.hardenMisses.Value(); got != 1 {
		t.Errorf("stash_harden_misses_total = %d, want 1", got)
	}
}
