package serve

import (
	"context"
	"fmt"
	"strings"

	"macro3d/internal/faults"
	"macro3d/internal/flows"
	"macro3d/internal/obs/trace"
	"macro3d/internal/piton"
	"macro3d/internal/report"
)

// runSpec is the production Runner: it maps a validated JobSpec onto
// the flow and sweep entry points, wiring in the shared stage cache,
// the per-job recorder (whose JSONL stream backs /jobs/{id}/events)
// and — on fault-permitting servers — the injected daemon-path faults.
func (s *Server) runSpec(ctx context.Context, job *Job) (string, error) {
	spec := job.Spec()
	var tr *trace.Tracer
	if s.cfg.TraceDir != "" {
		tr = trace.New()
		defer s.writeJobTrace(job.ID(), tr)
	}
	fc := flows.Config{
		Piton:          tileConfig(spec.Config),
		Seed:           spec.Seed,
		MacroDieMetals: spec.MacroDieMetals,
		Workers:        spec.Workers,
		Obs:            job.rec,
		Trace:          tr,
		Cache:          s.cfg.Cache,
		CacheVerify:    s.cfg.CacheVerify,
		Verify:         spec.Verify,
	}
	switch spec.Fault {
	case "panic":
		// Note: setting AfterStage disables the stage cache for this
		// job (cacheEnabled), so a faulted job never publishes partial
		// state into the shared store.
		fc.AfterStage = faults.PanicHook(flows.StagePlace)
	case "hang":
		fc.AfterStage = faults.HangHook(flows.StagePlace, s.cfg.HangDuration)
	}

	if spec.Flow != "" {
		var (
			ppa *flows.PPA
			err error
		)
		switch spec.Flow {
		case "2d":
			ppa, _, err = flows.Run2DCtx(ctx, fc)
		case "macro3d":
			ppa, _, _, err = flows.RunMacro3DCtx(ctx, fc)
		case "s2d":
			ppa, _, err = flows.RunS2DCtx(ctx, fc, false)
		case "bfs2d":
			ppa, _, err = flows.RunS2DCtx(ctx, fc, true)
		case "c2d":
			ppa, _, err = flows.RunC2DCtx(ctx, fc)
		default:
			return "", fmt.Errorf("serve: unknown flow %q", spec.Flow)
		}
		if err != nil {
			return "", err
		}
		return renderPPA(ppa), nil
	}

	switch spec.Sweep {
	case "pitch":
		sw, err := report.RunPitchSweepWith(ctx, fc, spec.Pitches, spec.KeepGoing)
		if err != nil {
			return "", err
		}
		return sw.Format(), nil
	case "blockage":
		sw, err := report.RunBlockageSweepWith(ctx, fc, spec.Resolutions, spec.KeepGoing)
		if err != nil {
			return "", err
		}
		return sw.Format(), nil
	case "heterotech":
		sw, err := report.RunHeteroTechSweepWith(ctx, fc, spec.KeepGoing)
		if err != nil {
			return "", err
		}
		return sw.Format(), nil
	}
	return "", fmt.Errorf("serve: empty spec") // unreachable after validate
}

// tileConfig maps the validated spec config name to a tile generator
// configuration.
func tileConfig(name string) piton.Config {
	switch name {
	case "tiny":
		return piton.Tiny()
	case "large":
		return piton.LargeCache()
	default:
		return piton.SmallCache()
	}
}

// renderPPA is the flow-result text body: the one-line summary plus
// the detail block the CLI prints.
func renderPPA(p *flows.PPA) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", p)
	fmt.Fprintf(&b, "  min period     %10.1f ps\n", p.MinPeriodPs)
	fmt.Fprintf(&b, "  power          %10.1f µW\n", p.PowerUW)
	fmt.Fprintf(&b, "  crit path      %10.1f ps over %.2f mm\n", p.CritPathPs, p.CritPathWLmm)
	fmt.Fprintf(&b, "  route overflow %10d gcell-layers\n", p.RouteOverflow)
	return b.String()
}
