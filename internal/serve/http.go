package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"macro3d/internal/stash"
)

// Handler returns the daemon's JSON-over-HTTP API:
//
//	POST /jobs              submit a JobSpec; 202 + JobView, 429 when the
//	                        queue is full (with Retry-After), 503 draining
//	GET  /jobs              all jobs, submission order
//	GET  /jobs/{id}         one job record
//	POST /jobs/{id}/cancel  cancel queued or running job
//	GET  /jobs/{id}/events  the job's JSONL observability stream
//	                        (?follow=1 streams until the job is terminal)
//	GET  /healthz           daemon liveness + queue/job-state snapshot
//	GET  /stashz            shared stage-cache statistics
//	GET  /metrics           server-wide Prometheus text exposition
//	GET  /metrics.json      JSON snapshot of the same
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stashz", s.handleStash)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.syncStashMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.rec.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		s.syncStashMetrics()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = s.rec.Registry().WriteJSON(w)
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "macro3d daemon\n\nPOST /jobs\nGET /jobs\nGET /jobs/{id}\nPOST /jobs/{id}/cancel\nGET /jobs/{id}/events\nGET /healthz\nGET /stashz\nGET /metrics\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.View())
	case err == ErrQueueFull:
		// Backpressure, not failure: the client should retry after the
		// hinted delay. A queue slot frees as soon as a worker finishes
		// a job, so the hint is deliberately short.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	if r.URL.Query().Get("follow") == "" {
		_, _ = w.Write(job.Events())
		return
	}
	// Follow mode: poll the job's tail buffer and stream new bytes
	// until the job is terminal (then flush the remainder) or the
	// client goes away.
	flusher, _ := w.(http.Flusher)
	off := 0
	write := func() {
		if b := job.events.From(off); len(b) > 0 {
			off += len(b)
			_, _ = w.Write(b)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	write()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-job.Done():
			write()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			write()
		}
	}
}

// healthView is the /healthz body.
type healthView struct {
	Status     string           `json:"status"` // "ok" or "draining"
	Draining   bool             `json:"draining"`
	Workers    int              `json:"workers"`
	QueueDepth int              `json:"queue_depth"`
	QueueCap   int              `json:"queue_cap"`
	Jobs       map[JobState]int `json:"jobs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	v := healthView{
		Status:     "ok",
		Draining:   s.Draining(),
		Workers:    s.cfg.Workers,
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		Jobs:       s.jobCounts(),
	}
	if v.Draining {
		v.Status = "draining"
	}
	writeJSON(w, http.StatusOK, v)
}

// stashView is the /stashz body: the shared store's counters plus its
// byte budget.
type stashView struct {
	Enabled    bool        `json:"enabled"`
	Stats      stash.Stats `json:"stats,omitempty"`
	TotalBytes int64       `json:"total_bytes"`
	MaxBytes   int64       `json:"max_bytes,omitempty"`
}

func (s *Server) handleStash(w http.ResponseWriter, _ *http.Request) {
	v := stashView{Enabled: s.cfg.Cache != nil}
	if s.cfg.Cache != nil {
		v.Stats = s.cfg.Cache.Stats()
		v.TotalBytes, v.MaxBytes = s.cfg.Cache.Usage()
	}
	writeJSON(w, http.StatusOK, v)
}
