package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"macro3d/internal/faults"
	"macro3d/internal/stash"
)

// httpServer spins up a Server behind httptest and returns a tiny
// client API. Shutdown is registered as cleanup.
func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, base string, spec JobSpec) (*http.Response, JobView) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

func getJob(t *testing.T, base, id string) JobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// awaitJob polls the job endpoint until the record is terminal.
func awaitJob(t *testing.T, base, id string, within time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		v := getJob(t, base, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPRoundTrip exercises the full API surface against a stub
// runner: submit, list, fetch, cancel, health, metrics, validation.
func TestHTTPRoundTrip(t *testing.T) {
	gate := make(chan struct{})
	_, ts := httpServer(t, Config{Workers: 1, QueueDepth: 8,
		Runner: func(ctx context.Context, job *Job) (string, error) {
			select {
			case <-gate:
				return "result body", nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}})

	resp, v := postJob(t, ts.URL, stubSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	if v.ID == "" || v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("unexpected accepted view: %+v", v)
	}

	// A second job, canceled while the first blocks the worker.
	_, v2 := postJob(t, ts.URL, stubSpec())
	cresp, err := http.Post(ts.URL+"/jobs/"+v2.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", cresp.StatusCode)
	}

	close(gate)
	done := awaitJob(t, ts.URL, v.ID, 5*time.Second)
	if done.State != StateDone || done.Result != "result body" {
		t.Fatalf("job 1: %+v", done)
	}
	if got := awaitJob(t, ts.URL, v2.ID, 5*time.Second); got.State != StateCanceled {
		t.Fatalf("job 2 state %s, want canceled", got.State)
	}

	// List returns both in submission order.
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobView
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list) != 2 || list[0].ID != v.ID || list[1].ID != v2.ID {
		t.Fatalf("GET /jobs: %+v", list)
	}

	// Health reports ok and counts.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthView
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Status != "ok" || h.Jobs[StateDone] != 1 || h.Jobs[StateCanceled] != 1 {
		t.Fatalf("healthz: %+v", h)
	}

	// Metrics expose the server counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mbuf.String(), "serve_jobs_submitted_total") {
		t.Error("metrics missing serve_jobs_submitted_total")
	}

	// Unknown job and invalid spec reject cleanly.
	nresp, _ := http.Get(ts.URL + "/jobs/zzz")
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: %d", nresp.StatusCode)
	}
	nresp.Body.Close()
	bresp, _ := postJob(t, ts.URL, JobSpec{})
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST invalid spec: %d", bresp.StatusCode)
	}
}

// TestHTTPBackpressure fills the queue and asserts the API answers 429
// with a Retry-After hint, then admits again once capacity frees.
func TestHTTPBackpressure(t *testing.T) {
	gate := make(chan struct{})
	_, ts := httpServer(t, Config{Workers: 1, QueueDepth: 1,
		Runner: func(ctx context.Context, job *Job) (string, error) {
			select {
			case <-gate:
				return "ok", nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}})

	// Saturate: 1 running + 1 queued (retry while the worker picks up).
	var ids []string
	deadline := time.Now().Add(5 * time.Second)
	for len(ids) < 2 {
		resp, v := postJob(t, ts.URL, stubSpec())
		if resp.StatusCode == http.StatusAccepted {
			ids = append(ids, v.ID)
		} else if time.Now().After(deadline) {
			t.Fatal("could not saturate queue")
		}
	}
	// Let the worker claim the first so the queue is exactly full.
	time.Sleep(50 * time.Millisecond)

	resp, _ := postJob(t, ts.URL, stubSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gate)
	for _, id := range ids {
		awaitJob(t, ts.URL, id, 5*time.Second)
	}
	if resp, _ := postJob(t, ts.URL, stubSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST after drain: %d, want 202", resp.StatusCode)
	}
}

// TestHTTPDraining asserts a draining server answers 503.
func TestHTTPDraining(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1,
		Runner: func(context.Context, *Job) (string, error) { return "", nil }})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJob(t, ts.URL, stubSpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d, want 503", resp.StatusCode)
	}
}

// TestRealFlowWarmCache runs two identical tiny flows through the real
// runner against a shared byte-capped stash: the second job must be
// served from the first job's snapshots (cross-tenant warm hit) and
// both must produce byte-identical results.
func TestRealFlowWarmCache(t *testing.T) {
	cache, err := stash.OpenLimited(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := httpServer(t, Config{Workers: 1, QueueDepth: 8, Cache: cache})

	spec := JobSpec{Flow: "2d", Config: "tiny", Seed: 3}
	_, v1 := postJob(t, ts.URL, spec)
	done1 := awaitJob(t, ts.URL, v1.ID, 60*time.Second)
	if done1.State != StateDone {
		t.Fatalf("job 1: %+v", done1)
	}
	miss := cache.Stats()
	if miss.Puts == 0 {
		t.Fatal("first run stored no snapshots — cache not wired through")
	}

	_, v2 := postJob(t, ts.URL, spec)
	done2 := awaitJob(t, ts.URL, v2.ID, 60*time.Second)
	if done2.State != StateDone {
		t.Fatalf("job 2: %+v", done2)
	}
	if done1.Result == "" || done1.Result != done2.Result {
		t.Error("warm and cold runs disagree")
	}
	warm := cache.Stats()
	if warm.Hits <= miss.Hits {
		t.Errorf("second job hit the cache %d times, want > %d", warm.Hits, miss.Hits)
	}

	// /stashz reflects the shared store.
	resp, err := http.Get(ts.URL + "/stashz")
	if err != nil {
		t.Fatal(err)
	}
	var sv stashView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sv.Enabled || sv.Stats.Hits == 0 || sv.MaxBytes != 64<<20 {
		t.Errorf("stashz: %+v", sv)
	}
}

// TestFaultPanicJobIsolated submits a fault=panic job through the real
// runner: the job fails with the panic recorded as a typed stage
// error, and the daemon keeps serving — the next job completes.
func TestFaultPanicJobIsolated(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 1, QueueDepth: 8, AllowFaults: true})

	_, v := postJob(t, ts.URL, JobSpec{Flow: "2d", Config: "tiny", Fault: "panic"})
	done := awaitJob(t, ts.URL, v.ID, 60*time.Second)
	if done.State != StateFailed {
		t.Fatalf("panicking job state %s, want failed", done.State)
	}
	if done.StageError == nil || !done.StageError.Panicked {
		t.Fatalf("panic not recorded as a typed stage error: %+v", done)
	}

	// The daemon survived: a clean job right after completes.
	_, v2 := postJob(t, ts.URL, JobSpec{Flow: "2d", Config: "tiny"})
	if got := awaitJob(t, ts.URL, v2.ID, 60*time.Second); got.State != StateDone {
		t.Fatalf("job after panic: %+v", got)
	}
}

// TestFaultHangJobAbandoned submits a fault=hang job with a short
// per-job timeout: the stage ignores cancellation, so the daemon must
// abandon the job after the grace period and keep the worker alive.
func TestFaultHangJobAbandoned(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 1, QueueDepth: 8, AllowFaults: true,
		AbandonGrace: 100 * time.Millisecond, HangDuration: 2 * time.Second})

	spec := JobSpec{Flow: "2d", Config: "tiny", Fault: "hang", TimeoutMS: 200}
	_, v := postJob(t, ts.URL, spec)
	done := awaitJob(t, ts.URL, v.ID, 60*time.Second)
	if done.State != StateFailed || !done.Abandoned {
		t.Fatalf("hung job state=%s abandoned=%v, want failed/true", done.State, done.Abandoned)
	}

	// Worker slot freed: the next job runs to completion.
	_, v2 := postJob(t, ts.URL, JobSpec{Flow: "2d", Config: "tiny"})
	if got := awaitJob(t, ts.URL, v2.ID, 60*time.Second); got.State != StateDone {
		t.Fatalf("job after abandoned hang: %+v", got)
	}
}

// TestCorruptCacheRecompute corrupts every shared snapshot between two
// identical jobs: the second job must detect the corruption (checksum
// misses), recompute, and still produce the identical result.
func TestCorruptCacheRecompute(t *testing.T) {
	dir := t.TempDir()
	cache, err := stash.OpenLimited(dir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := httpServer(t, Config{Workers: 1, QueueDepth: 8, Cache: cache})

	spec := JobSpec{Flow: "2d", Config: "tiny", Seed: 5}
	_, v1 := postJob(t, ts.URL, spec)
	done1 := awaitJob(t, ts.URL, v1.ID, 60*time.Second)
	if done1.State != StateDone {
		t.Fatalf("job 1: %+v", done1)
	}
	n, err := faults.CorruptSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing to corrupt — cache not populated")
	}

	_, v2 := postJob(t, ts.URL, spec)
	done2 := awaitJob(t, ts.URL, v2.ID, 60*time.Second)
	if done2.State != StateDone {
		t.Fatalf("job 2 after corruption: %+v", done2)
	}
	if done1.Result != done2.Result {
		t.Error("recompute after corruption changed the result")
	}
}

// TestEventsEndpoint asserts a real job's observability stream is
// served as JSONL with span events in it.
func TestEventsEndpoint(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 1})
	_, v := postJob(t, ts.URL, JobSpec{Flow: "2d", Config: "tiny"})
	awaitJob(t, ts.URL, v.ID, 60*time.Second)

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "span_open") {
		t.Fatalf("events stream lacks span events (%d bytes)", buf.Len())
	}
	// Every line parses as JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var any map[string]any
		if err := json.Unmarshal([]byte(line), &any); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
	}

	// Follow mode on a finished job returns immediately with the bytes.
	fresp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	_, _ = fbuf.ReadFrom(fresp.Body)
	fresp.Body.Close()
	if fbuf.Len() != buf.Len() {
		t.Errorf("follow mode returned %d bytes, snapshot %d", fbuf.Len(), buf.Len())
	}
}

// TestConcurrentTenants is the in-process load shape: N tenants with
// overlapping specs hammer a shared capped cache concurrently. Every
// job must finish done, identical specs must agree byte-for-byte, and
// the store must stay under its cap.
func TestConcurrentTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow load test")
	}
	cache, err := stash.OpenLimited(t.TempDir(), 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := httpServer(t, Config{Workers: 4, QueueDepth: 32, Cache: cache})

	// 8 tenants, 2 distinct specs → heavy cross-tenant overlap.
	const tenants = 8
	specs := make([]JobSpec, tenants)
	ids := make([]string, tenants)
	for i := range specs {
		specs[i] = JobSpec{Flow: "2d", Config: "tiny", Seed: uint64(1 + i%2)}
		resp, v := postJob(t, ts.URL, specs[i])
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("tenant %d rejected: %d", i, resp.StatusCode)
		}
		ids[i] = v.ID
	}
	results := make(map[uint64]string)
	for i, id := range ids {
		v := awaitJob(t, ts.URL, id, 120*time.Second)
		if v.State != StateDone {
			t.Fatalf("tenant %d: %+v", i, v)
		}
		seed := specs[i].Seed
		if prev, ok := results[seed]; ok && prev != v.Result {
			t.Errorf("tenant %d: result for seed %d diverged", i, seed)
		}
		results[seed] = v.Result
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Error("no cross-tenant cache hits under overlapping load")
	}
	if total, max := cache.Usage(); total > max {
		t.Errorf("cache %d bytes over its %d cap", total, max)
	}
}
