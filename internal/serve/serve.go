// Package serve is the multi-tenant macro3d daemon: a JSON-over-HTTP
// job API in front of a bounded worker pool, composing the hardened
// flow engine (panic containment, ctx cancellation), the observability
// layer (per-job JSONL event streams, a server-wide metric registry)
// and the content-addressed stage cache as a *shared* artifact store —
// concurrent tenants sweeping overlapping configurations hit each
// other's checkpoints.
//
// Robustness contract:
//
//   - Admission control: the queue is bounded; an overflowing submit is
//     rejected immediately (HTTP 429 + Retry-After), never buffered
//     without bound. A draining server rejects with 503.
//   - Isolation: a panicking stage becomes a typed StageError in that
//     job's record; a stage that ignores cancellation past its deadline
//     is abandoned (its goroutine discarded, its worker slot freed).
//     Neither takes down the daemon or a neighbouring job.
//   - Lifecycle: Shutdown stops admission, drains queued and running
//     jobs, and past its deadline cancels the stragglers — a hard stop
//     with a bounded wait, not a hang.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/stash"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the job worker pool size (default 2).
	Workers int

	// QueueDepth bounds the admission queue (default 16). Submits
	// beyond running+queued capacity fail with ErrQueueFull.
	QueueDepth int

	// JobTimeout is the per-job wall-clock ceiling (default 10m). A
	// spec may request less, never more.
	JobTimeout time.Duration

	// AbandonGrace is how long a canceled or timed-out job may keep
	// running before its goroutine is abandoned and the worker slot
	// freed (default 3s). Flows honour cancellation at stage
	// boundaries, so the grace normally suffices; a stage that ignores
	// its context is the pathological case the abandon path exists for.
	AbandonGrace time.Duration

	// HangDuration is how long an injected "hang" fault blocks
	// (default 30s; tests shorten it).
	HangDuration time.Duration

	// Cache, when set, is the shared artifact store every job runs
	// against. Concurrency safety and the byte cap live in the store
	// itself (stash.OpenLimited).
	Cache       *stash.Store
	CacheVerify bool

	// AllowFaults honours JobSpec.Fault (tests and load drivers only).
	AllowFaults bool

	// TraceDir, when set, enables execution tracing: each job's engine
	// timeline is written to TraceDir/<jobid>.trace.json as it settles,
	// and a server-wide scheduling trace (per-job queue-wait and run
	// slices, one track per job) lands in TraceDir/serve.trace.json at
	// Shutdown. All files are Chrome trace-event JSON.
	TraceDir string

	// Runner overrides job execution (tests). nil runs the real flows.
	Runner func(ctx context.Context, job *Job) (string, error)

	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.AbandonGrace <= 0 {
		c.AbandonGrace = 3 * time.Second
	}
	if c.HangDuration <= 0 {
		c.HangDuration = 30 * time.Second
	}
	return c
}

// Submission failures the HTTP layer maps onto status codes.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: server is draining")
)

// Server owns the job table, the bounded queue and the worker pool.
type Server struct {
	cfg Config
	rec *obs.Recorder // server-wide metrics (queue, jobs, isolation events)

	baseCtx    context.Context
	cancelJobs context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job
	nextID   int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup

	// Counters are registered once; the Prometheus endpoint exposes
	// them alongside whatever the jobs' engines record server-wide.
	submitted, rejected, completed, failed, canceled, abandoned, panics *obs.Counter
	queueDepth, running                                                 *obs.Gauge
	queueWait, jobRun                                                   *obs.Histogram
	hardenHits, hardenMisses                                            *obs.Counter

	// tracer is the server-wide scheduling tracer (nil unless
	// Config.TraceDir is set); traceOnce guards the Shutdown-time write.
	tracer    *trace.Tracer
	traceOnce sync.Once
}

// New starts a Server: its workers are live and its Handler is ready
// to mount. Stop it with Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		rec:        obs.New(),
		baseCtx:    ctx,
		cancelJobs: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	reg := s.rec.Registry()
	s.submitted = reg.Counter("serve_jobs_submitted_total", "Jobs admitted to the queue.")
	s.rejected = reg.Counter("serve_jobs_rejected_total", "Submissions rejected by admission control (queue full or draining).")
	s.completed = reg.Counter("serve_jobs_completed_total", "Jobs that finished successfully.")
	s.failed = reg.Counter("serve_jobs_failed_total", "Jobs that finished with an error.")
	s.canceled = reg.Counter("serve_jobs_canceled_total", "Jobs canceled before or during execution.")
	s.abandoned = reg.Counter("serve_jobs_abandoned_total", "Jobs whose runner ignored cancellation past the grace period and was abandoned.")
	s.panics = reg.Counter("serve_job_panics_total", "Jobs that failed on a contained panic.")
	s.queueDepth = reg.Gauge("serve_queue_depth_jobs", "Jobs waiting in the admission queue.")
	s.running = reg.Gauge("serve_running_jobs", "Jobs currently executing.")
	s.queueWait = reg.Histogram("serve_queue_wait_ms", "Milliseconds jobs waited in the queue before a worker claimed them.")
	s.jobRun = reg.Histogram("serve_job_run_ms", "Milliseconds jobs spent executing, claim to terminal state.")
	s.hardenHits = reg.Counter("stash_harden_hits_total", "Hardened-abstract cache hits on the shared stage cache.")
	s.hardenMisses = reg.Counter("stash_harden_misses_total", "Hardened-abstract cache misses on the shared stage cache.")
	if cfg.TraceDir != "" {
		s.tracer = trace.New()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates and enqueues a job. The returned errors ErrQueueFull
// and ErrDraining are admission rejections; any other error is a spec
// validation failure.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(s.cfg.AllowFaults); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Inc()
		return nil, ErrDraining
	}
	job := newJob(fmt.Sprintf("j%05d", s.nextID+1), spec)
	select {
	case s.queue <- job:
		s.nextID++
		s.jobs[job.id] = job
		s.order = append(s.order, job)
		s.mu.Unlock()
		s.submitted.Inc()
		s.queueDepth.Set(float64(len(s.queue)))
		s.logf("serve: %s queued (%s)", job.id, specLabel(spec))
		return job, nil
	default:
		s.mu.Unlock()
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
}

func specLabel(sp JobSpec) string {
	if sp.Flow != "" {
		return fmt.Sprintf("flow %s/%s seed %d", sp.Flow, sp.Config, sp.Seed)
	}
	return fmt.Sprintf("sweep %s/%s seed %d", sp.Sweep, sp.Config, sp.Seed)
}

// Job returns a job by ID, nil when unknown.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Cancel cancels a job: a queued job transitions to canceled
// immediately and never starts; a running job has its context fired
// and finishes at the flow's next stage boundary (or is abandoned
// after the grace period). Canceling a terminal job is a no-op.
func (s *Server) Cancel(id string) (*Job, error) {
	job := s.Job(id)
	if job == nil {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	wasQueued := job.State() == StateQueued
	if job.requestCancel() && wasQueued && job.State() == StateCanceled {
		s.canceled.Inc()
		s.logf("serve: %s canceled while queued", job.id)
	}
	return job, nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Registry exposes the server-wide metric registry (the /metrics
// endpoint's source).
func (s *Server) Registry() *obs.Registry { return s.rec.Registry() }

// Shutdown drains then stops: admission closes (Submit returns
// ErrDraining), already-admitted jobs — queued and running — are given
// until ctx expires to complete, after which every remaining job
// context is canceled and stragglers are abandoned. Returns nil on a
// clean drain, the deadline error when jobs had to be cut off.
// Idempotent: concurrent and repeated calls share one drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers finish the backlog, then exit
	}
	s.mu.Unlock()
	defer s.writeServeTrace()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed: cancel everything still in flight. Workers
	// abandon non-cooperating jobs after AbandonGrace, so this wait is
	// bounded too.
	s.cancelJobs()
	select {
	case <-done:
		return fmt.Errorf("serve: drain deadline exceeded; in-flight jobs canceled: %w", ctx.Err())
	case <-time.After(s.cfg.AbandonGrace + 2*time.Second):
		return fmt.Errorf("serve: drain deadline exceeded and workers did not unwind: %w", ctx.Err())
	}
}

// worker drains the queue until it is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.queueDepth.Set(float64(len(s.queue)))
		s.runJob(job)
	}
}

// runJob executes one job with isolation: the runner goes to its own
// goroutine so a hang can be abandoned, and every outcome (value,
// error, contained panic, cancellation) lands in the job record.
func (s *Server) runJob(job *Job) {
	// Jobs canceled while queued, and backlog drained after the drain
	// deadline already cut job contexts, finish without running.
	if s.baseCtx.Err() != nil {
		if job.finish(StateCanceled, "", "canceled at shutdown before start", nil, false) != "" {
			s.canceled.Inc()
		}
		return
	}
	timeout := s.cfg.JobTimeout
	if t := time.Duration(job.spec.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if !job.claimRunning(cancel) {
		return // canceled while queued
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	if sub, started, _ := job.times(); !started.IsZero() {
		s.queueWait.Observe(float64(started.Sub(sub)) / float64(time.Millisecond))
		if s.tracer != nil {
			s.tracer.Track(job.id).Add("serve", job.id+"/queue-wait", sub, started)
		}
	}
	defer s.recordRun(job)
	s.logf("serve: %s running", job.id)

	type outcome struct {
		result string
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				// Flows contain their own panics; this guard catches
				// panics outside stage containment (spec plumbing,
				// result rendering) so the daemon never dies for a job.
				ch <- outcome{err: fmt.Errorf("job panicked: %v", p)}
			}
		}()
		res, err := s.runner()(ctx, job)
		ch <- outcome{result: res, err: err}
	}()

	select {
	case out := <-ch:
		s.settle(job, out.result, out.err)
	case <-ctx.Done():
		// The job's context ended (timeout, cancel, shutdown). Flows
		// unwind at the next stage boundary — give them the grace
		// period, then abandon the goroutine and free the worker.
		select {
		case out := <-ch:
			s.settle(job, out.result, out.err)
		case <-time.After(s.cfg.AbandonGrace):
			msg := fmt.Sprintf("abandoned: job ignored cancellation %v past %v", s.cfg.AbandonGrace, ctx.Err())
			if job.finish(StateFailed, "", msg, nil, true) != "" {
				s.abandoned.Inc()
				s.failed.Inc()
				s.logf("serve: %s abandoned (%v)", job.id, ctx.Err())
			}
			// Drain the straggler's eventual result in the background
			// so its goroutine can exit; the job record is already
			// sealed, the late outcome is discarded.
			go func() { <-ch }()
		}
	}
}

// settle maps a runner outcome onto the job record and the counters.
func (s *Server) settle(job *Job, result string, err error) {
	switch {
	case err == nil:
		if job.finish(StateDone, result, "", nil, false) != "" {
			s.completed.Inc()
			s.logf("serve: %s done", job.id)
		}
	case job.cancelRequested() && errors.Is(err, context.Canceled):
		if job.finish(StateCanceled, "", "canceled", nil, false) != "" {
			s.canceled.Inc()
			s.logf("serve: %s canceled", job.id)
		}
	default:
		sf := stageFailure(err)
		if job.finish(StateFailed, "", err.Error(), sf, false) != "" {
			s.failed.Inc()
			if sf != nil && sf.Panicked {
				s.panics.Inc()
			}
			s.logf("serve: %s failed: %v", job.id, err)
		}
	}
}

// recordRun publishes a terminal job's execution time: the
// serve_job_run_ms histogram and, when tracing, a run slice on the
// job's tenant track of the server scheduling trace.
func (s *Server) recordRun(job *Job) {
	_, started, finished := job.times()
	if started.IsZero() || finished.IsZero() {
		return
	}
	s.jobRun.Observe(float64(finished.Sub(started)) / float64(time.Millisecond))
	if s.tracer != nil {
		s.tracer.Track(job.id).Add("serve", job.id+"/run", started, finished)
	}
}

// writeJobTrace atomically writes one job's engine timeline to
// TraceDir/<jobid>.trace.json (temp + rename, so readers never see a
// partial file). Trace I/O failures are logged, never fatal: tracing
// must not fail jobs.
func (s *Server) writeJobTrace(id string, tr *trace.Tracer) {
	if tr == nil || s.cfg.TraceDir == "" {
		return
	}
	if err := writeTraceFile(filepath.Join(s.cfg.TraceDir, id+".trace.json"), tr); err != nil {
		s.logf("serve: %s trace write failed: %v", id, err)
	}
}

// writeServeTrace writes the server-wide scheduling trace once, at
// Shutdown.
func (s *Server) writeServeTrace() {
	if s.tracer == nil {
		return
	}
	s.traceOnce.Do(func() {
		if err := writeTraceFile(filepath.Join(s.cfg.TraceDir, "serve.trace.json"), s.tracer); err != nil {
			s.logf("serve: scheduling trace write failed: %v", err)
		}
	})
}

// writeTraceFile renders a tracer as Chrome trace-event JSON at path,
// atomically.
func writeTraceFile(path string, tr *trace.Tracer) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".trace-*")
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

// syncStashMetrics folds the shared cache's harden counters into the
// server registry so /metrics and /metrics.json expose them (the
// per-job recorders the engines write to are not server-wide).
// Delta-tracked against the registry's own counters, so repeated
// scrapes stay monotonic.
func (s *Server) syncStashMetrics() {
	if s.cfg.Cache == nil {
		return
	}
	st := s.cfg.Cache.Stats()
	if d := st.HardenHits - s.hardenHits.Value(); d > 0 {
		s.hardenHits.Add(d)
	}
	if d := st.HardenMisses - s.hardenMisses.Value(); d > 0 {
		s.hardenMisses.Add(d)
	}
}

func (s *Server) runner() func(ctx context.Context, job *Job) (string, error) {
	if s.cfg.Runner != nil {
		return s.cfg.Runner
	}
	return s.runSpec
}

// jobCounts tallies the job table by state (for /healthz and tests).
func (s *Server) jobCounts() map[JobState]int {
	out := make(map[JobState]int, 5)
	for _, j := range s.Jobs() {
		out[j.State()]++
	}
	return out
}
