package sta

import (
	"macro3d/internal/cell"
)

// analyzeHold runs min-delay propagation and hold checks at
// sequential endpoints:
//
//	minArrival(data) ≥ captureLatency + hold
//
// Launches use the same clock latencies as setup analysis (a balanced
// tree makes hold easy; skew between launch and capture is what
// violates it). Results land in rep.Hold*. Hold is only checked on
// full sign-off runs, so it propagates from scratch each time over the
// engine's cached order and input arcs.
func (e *Engine) analyzeHold(rep *Report) {
	minArr := make([]float64, e.nNodes)
	const posInf = 1e30
	for i := range minArr {
		minArr[i] = posInf
	}

	// Launch points: sequential outputs at latency + clk→Q (fast
	// corner would be more pessimistic for hold; the caller picks the
	// corner via Options). Ports launch at their external delay.
	for _, inst := range e.d.Instances {
		if inst.Master.IsSequential() {
			n := e.nodeOfInst(inst)
			minArr[n] = e.clockLatency(inst) + inst.Master.ClkQ*e.opt.Corner.CellDelay
		}
	}
	for _, p := range e.d.Ports {
		if p.Dir == cell.DirIn {
			minArr[e.nodeOfPort(p)] = p.ExtDelay
		}
	}

	// Min-delay propagation over the same levelized order. Wire and
	// cell minimum delays: reuse the nominal model (a single corner);
	// the short-path Elmore is the same tree.
	for _, inst := range e.order {
		node := e.nodeOfInst(inst)
		load := 0.0
		if on := e.outNet[node]; on != nil {
			if rc := e.ex.Nets[on.ID]; rc != nil {
				load = rc.CTotal()
			}
		}
		best := posInf
		for _, ev := range e.inputs[inst.ID] {
			rc := e.ex.Nets[ev.net]
			if rc == nil {
				continue
			}
			ia := minArr[ev.drv]
			if ia >= posInf {
				continue
			}
			d := inst.Master.Delay(load, e.opt.DefaultSlew) * e.opt.Corner.CellDelay
			if at := ia + rc.ElmoreTo[ev.si] + d; at < best {
				best = at
			}
		}
		if best < posInf {
			minArr[node] = best
		}
	}

	// Hold checks at sequential data inputs.
	rep.HoldWNS = posInf
	for _, n := range e.d.Nets {
		if n.Clock {
			continue
		}
		rc := e.ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drv, ok := e.refNode(n.Driver)
		if !ok || minArr[drv] >= posInf {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst == nil || !s.Inst.Master.IsSequential() || s.Inst.Master.Pin(s.Pin).Clock {
				continue
			}
			at := minArr[drv] + rc.ElmoreTo[si]
			slack := at - e.clockLatency(s.Inst) - s.Inst.Master.Hold*e.opt.Corner.CellDelay
			rep.HoldEndpoints++
			if slack < rep.HoldWNS {
				rep.HoldWNS = slack
			}
			if slack < 0 {
				rep.HoldViolations++
			}
		}
	}
	if rep.HoldEndpoints == 0 {
		rep.HoldWNS = 0
	}
}
