package sta

import (
	"macro3d/internal/cell"
	"macro3d/internal/netlist"
)

// analyzeHold runs min-delay propagation and hold checks at
// sequential endpoints:
//
//	minArrival(data) ≥ captureLatency + hold
//
// Launches use the same clock latencies as setup analysis (a balanced
// tree makes hold easy; skew between launch and capture is what
// violates it). Results land in rep.Hold*.
func (a *analyzer) analyzeHold(order []*netlist.Instance, rep *Report) {
	minArr := make([]float64, a.nNodes)
	const posInf = 1e30
	for i := range minArr {
		minArr[i] = posInf
	}

	// Launch points: sequential outputs at latency + clk→Q (fast
	// corner would be more pessimistic for hold; the caller picks the
	// corner via Options). Ports launch at their external delay.
	for _, inst := range a.d.Instances {
		if inst.Master.IsSequential() {
			n := a.nodeOfInst(inst)
			minArr[n] = a.clockLatency(inst) + inst.Master.ClkQ*a.opt.Corner.CellDelay
		}
	}
	for _, p := range a.d.Ports {
		if p.Dir == cell.DirIn {
			minArr[a.nodeOfPort(p)] = p.ExtDelay
		}
	}

	// Min-delay propagation over the same levelized order. Wire and
	// cell minimum delays: reuse the nominal model (a single corner);
	// the short-path Elmore is the same tree.
	type inEvent struct {
		drv int
		elm float64
	}
	inputs := make([][]inEvent, len(a.d.Instances))
	for _, n := range a.d.Nets {
		if n.Clock {
			continue
		}
		rc := a.ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drv, ok := a.refNode(n.Driver)
		if !ok {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst != nil && !s.Inst.Master.IsSequential() && s.Inst.Master.Output() != nil {
				inputs[s.Inst.ID] = append(inputs[s.Inst.ID], inEvent{drv: drv, elm: rc.ElmoreTo[si]})
			}
		}
	}
	for _, inst := range order {
		node := a.nodeOfInst(inst)
		load := 0.0
		if on := a.outNet[node]; on != nil {
			if rc := a.ex.Nets[on.ID]; rc != nil {
				load = rc.CTotal()
			}
		}
		best := posInf
		for _, ev := range inputs[inst.ID] {
			ia := minArr[ev.drv]
			if ia >= posInf {
				continue
			}
			d := inst.Master.Delay(load, a.opt.DefaultSlew) * a.opt.Corner.CellDelay
			if at := ia + ev.elm + d; at < best {
				best = at
			}
		}
		if best < posInf {
			minArr[node] = best
		}
	}

	// Hold checks at sequential data inputs.
	rep.HoldWNS = posInf
	for _, n := range a.d.Nets {
		if n.Clock {
			continue
		}
		rc := a.ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drv, ok := a.refNode(n.Driver)
		if !ok || minArr[drv] >= posInf {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst == nil || !s.Inst.Master.IsSequential() || s.Inst.Master.Pin(s.Pin).Clock {
				continue
			}
			at := minArr[drv] + rc.ElmoreTo[si]
			slack := at - a.clockLatency(s.Inst) - s.Inst.Master.Hold*a.opt.Corner.CellDelay
			rep.HoldEndpoints++
			if slack < rep.HoldWNS {
				rep.HoldWNS = slack
			}
			if slack < 0 {
				rep.HoldViolations++
			}
		}
	}
	if rep.HoldEndpoints == 0 {
		rep.HoldWNS = 0
	}
}
