package sta

import (
	"macro3d/internal/cell"
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
)

// PortArc is the boundary timing of one block port, derived from the
// block's own signed-off analysis state. Values are absolute at the
// analyzed corner — a parent flow consuming them must not re-apply a
// corner scale (flows.Harden runs this at the slow corner and stores
// the arcs on the abstract's pins).
type PortArc struct {
	// SetupPs is the input-port budget: the worst (path delay from the
	// port to an internal capture register + that register's setup),
	// referenced to the block's virtual port clock (the tree's mean
	// insertion delay). A parent treats the pin like a flip-flop data
	// input with this setup.
	SetupPs float64
	// ClkQPs is the output-port launch: the worst internal
	// clock-edge→port delay at the block's own signed-off load,
	// referenced the same way. A parent treats the pin like a
	// flip-flop output with this clock-to-out.
	ClkQPs float64
}

// BoundaryArcs condenses a signed-off block's internal timing onto its
// ports: one forward analysis for output clk→out arcs, one backward
// (reverse-topological) pass for input setup budgets. Port-to-port
// feedthrough contributions are excluded from the backward pass — the
// tile methodology registers signals at both ends, and feedthrough
// output timing is already captured by the forward arcs.
func BoundaryArcs(d *netlist.Design, ex *extract.Design, opt Options) (map[string]PortArc, error) {
	e, err := NewEngine(d, ex, opt)
	if err != nil {
		return nil, err
	}
	// Populate full/half pass state; the report itself (slacks at an
	// arbitrary period) is discarded.
	if _, err := e.Run(1e6); err != nil {
		return nil, err
	}

	ioRef := 0.0
	if e.opt.Clock != nil {
		ioRef = e.opt.Clock.MeanLatency
	}
	arcs := make(map[string]PortArc, len(d.Ports))

	// Forward: arrival at every output-port sink, worst over both
	// launch passes, relative to the virtual port clock.
	for _, n := range d.Nets {
		if n.Clock {
			continue
		}
		rc := ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drv, ok := e.refNode(n.Driver)
		if !ok {
			continue
		}
		for si, s := range n.Sinks {
			if s.Port == nil || s.Port.Dir != cell.DirOut {
				continue
			}
			elm := rc.ElmoreTo[si]
			a := arcs[s.Port.Name]
			for _, p := range []*pass{&e.full, &e.half} {
				if at := p.arr[drv]; at > negInf {
					if rel := at + elm - ioRef; rel > a.ClkQPs {
						a.ClkQPs = rel
					}
				}
			}
			arcs[s.Port.Name] = a
		}
	}

	// Backward: worst downstream capture budget per node. down[v] is
	// the delay from v's output to the worst internal capture endpoint
	// including that endpoint's setup and clock latency. Processing the
	// topological order in reverse computes sinks before their drivers.
	down := make([]float64, e.nNodes)
	for i := range down {
		down[i] = negInf
	}
	budget := func(node int) float64 {
		on := e.outNet[node]
		if on == nil {
			return negInf
		}
		rc := ex.Nets[on.ID]
		if rc == nil {
			return negInf
		}
		worst := negInf
		for si, s := range on.Sinks {
			elm := rc.ElmoreTo[si]
			switch {
			case s.Inst != nil && s.Inst.Master.IsSequential() && !s.Inst.Master.Pin(s.Pin).Clock:
				setup := s.Inst.Master.Setup * e.opt.Corner.CellDelay
				if s.Inst.Master.Abstract != nil {
					if p := s.Inst.Master.Pin(s.Pin); p != nil {
						setup = p.Setup
					}
				}
				if v := elm + setup - e.clockLatency(s.Inst) + ioRef; v > worst {
					worst = v
				}
			case s.Inst != nil && e.isComb[s.Inst.ID]:
				sn := e.nodeOfInst(s.Inst)
				if down[sn] <= negInf {
					continue
				}
				load := 0.0
				if son := e.outNet[sn]; son != nil {
					if src := ex.Nets[son.ID]; src != nil {
						load = src.CTotal()
					}
				}
				// Gate delay evaluated at the forward full-pass slew
				// of this driver, matching what the forward analysis
				// saw on the worst launch.
				gd := s.Inst.Master.Delay(load, e.full.slew[node]+elm) * e.opt.Corner.CellDelay
				if v := elm + gd + down[sn]; v > worst {
					worst = v
				}
			}
		}
		return worst
	}
	for i := len(e.order) - 1; i >= 0; i-- {
		inst := e.order[i]
		down[e.nodeOfInst(inst)] = budget(e.nodeOfInst(inst))
	}

	for _, pt := range d.Ports {
		if pt.Dir != cell.DirIn {
			continue
		}
		a := arcs[pt.Name]
		if v := budget(e.nodeOfPort(pt)); v > a.SetupPs {
			a.SetupPs = v
		}
		arcs[pt.Name] = a
	}
	// Floors: a negative arc would let a parent borrow time the block
	// never promised.
	for name, a := range arcs {
		if a.SetupPs < 0 {
			a.SetupPs = 0
		}
		if a.ClkQPs < 0 {
			a.ClkQPs = 0
		}
		arcs[name] = a
	}
	return arcs, nil
}
