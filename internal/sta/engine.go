package sta

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"macro3d/internal/cell"
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
)

// Engine is a persistent, incremental analyzer over one design. It
// caches the levelized topology and the per-pass arrival state between
// calls, so after a small edit only the dirty frontier (the edited
// nets' fan-in/fan-out cone) is re-evaluated. Because every node's
// value is a pure function of its final upstream values, recomputing
// only nodes whose inputs changed — and propagating only while a value
// actually changes — yields results bit-identical to a from-scratch
// Analyze.
//
// Node ids are ports-first: ports 0..len(Ports)-1, instances after.
// Ports are never added by incremental edits, so instance growth and
// rollback truncation only ever extend or shrink the tail of the
// per-node arrays; no id ever changes meaning across a topology epoch.
type Engine struct {
	d   *netlist.Design
	ex  *extract.Design
	opt Options

	nPorts int
	nNodes int

	isComb []bool // by instance ID
	// hasAbstract short-circuits the per-arc launch adjustment of
	// hardened-macro abstracts; designs without abstracts (every flat
	// flow) take bit-identical pre-existing paths.
	hasAbstract bool
	order       []*netlist.Instance   // combinational topological order
	level       []int32               // by instance ID: wave index in the order
	waves       [][]*netlist.Instance // order grouped by level (parallel full passes)
	fanout      [][]*netlist.Instance // by node: combinational sink instances
	inputs      [][]inEdge            // by instance ID: driving arcs
	outNet      []*netlist.Net        // by node: driven signal net (last wins)

	full, half pass

	dirtyFull, dirtyHalf []bool // by node; scratch between Update calls

	// Pending invalidation accumulated by Invalidate until the next
	// Update consumes it.
	pendNets  []int
	pendInsts []int
	pendTopo  bool
	// resetFrom is the lowest node count the design has had while the
	// pending invalidation accumulated: every node at or above it holds
	// values for an instance that may since have been truncated and
	// re-created, so the slot is reset before reuse.
	resetFrom int

	// Observability handles (nil when Options.Obs is unset; all
	// operations on them no-op).
	mFull, mInc *obs.Counter
	mRatio      *obs.Gauge
	mFrontier   *obs.Histogram
}

// inEdge is one driving arc into a combinational instance. Elmore and
// pin references are looked up live at evaluation time (net ID + sink
// index), so a reroute or re-extraction never leaves a stale cached
// value.
type inEdge struct {
	drv int32 // driver node
	net int32
	si  int32
}

// pass holds the persistent per-node state of one launch pass
// (full-cycle or half-cycle).
type pass struct {
	arr, slew, wl []float64
	prev          []int
	pref          []netlist.PinRef
}

func (e *Engine) nodeOfInst(i *netlist.Instance) int { return e.nPorts + i.ID }
func (e *Engine) nodeOfPort(p *netlist.Port) int     { return p.ID }

func (e *Engine) refNode(r netlist.PinRef) (int, bool) {
	if r.Port != nil {
		return e.nodeOfPort(r.Port), true
	}
	if r.Inst != nil {
		return e.nodeOfInst(r.Inst), true
	}
	return 0, false
}

// clockLatency returns the tree latency of a sequential instance.
func (e *Engine) clockLatency(inst *netlist.Instance) float64 {
	if e.opt.Clock == nil {
		return 0
	}
	return e.opt.Clock.LatencyOf[inst.ID]
}

// NewEngine builds an engine over the design and its extraction. The
// parasitics are checked for finiteness and the combinational topology
// levelized; both can fail.
func NewEngine(d *netlist.Design, ex *extract.Design, opt Options) (*Engine, error) {
	if err := ex.CheckFinite(); err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	e := &Engine{d: d, ex: ex, opt: opt.withDefaults(), resetFrom: int(^uint(0) >> 1)}
	if reg := opt.Obs.Reg(); reg != nil {
		e.mFull = reg.Counter("sta_full_runs_total",
			"From-scratch STA passes (Engine.Run and sta.Analyze).")
		e.mInc = reg.Counter("sta_incremental_updates_total",
			"Incremental STA passes re-evaluating only the dirty frontier.")
		e.mRatio = reg.Gauge("sta_incremental_ratio",
			"Incremental updates over all STA passes this run.")
		e.mFrontier = reg.Histogram("sta_dirty_frontier_nodes",
			"Nodes marked dirty per incremental update (frontier size).")
	}
	if err := e.rebuildTopo(); err != nil {
		return nil, err
	}
	return e, nil
}

// updateRatio republishes incremental/(incremental+full) after either
// counter moved.
func (e *Engine) updateRatio() {
	if e.mRatio == nil {
		return
	}
	inc, full := float64(e.mInc.Value()), float64(e.mFull.Value())
	if inc+full > 0 {
		e.mRatio.Set(inc / (inc + full))
	}
}

// rebuildTopo (re)derives every topology-dependent cache from the
// current design: node count, levelized order, fanout and input-arc
// adjacency, driven-net table. Per-node value arrays are grown or
// shrunk at the tail; slots at or above resetFrom are re-initialized.
func (e *Engine) rebuildTopo() error {
	e.nPorts = len(e.d.Ports)
	e.nNodes = e.nPorts + len(e.d.Instances)

	if cap(e.isComb) < len(e.d.Instances) {
		e.isComb = make([]bool, len(e.d.Instances))
	}
	e.isComb = e.isComb[:len(e.d.Instances)]
	e.hasAbstract = false
	for i, inst := range e.d.Instances {
		e.isComb[i] = !inst.Master.IsSequential() &&
			inst.Master.Kind != cell.KindFiller && inst.Master.Output() != nil
		if inst.Master.Abstract != nil {
			e.hasAbstract = true
		}
	}

	if err := e.levelize(); err != nil {
		return err
	}

	// Input arcs and driven nets, in net order (the order fixes the
	// tie-break among equal-arrival inputs, so it must match what a
	// from-scratch pass builds).
	e.inputs = make([][]inEdge, len(e.d.Instances))
	e.outNet = make([]*netlist.Net, e.nNodes)
	for _, n := range e.d.Nets {
		if n.Clock {
			continue
		}
		drv, ok := e.refNode(n.Driver)
		if !ok {
			continue
		}
		e.outNet[drv] = n
		if e.ex.Nets[n.ID] == nil {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst != nil && e.isComb[s.Inst.ID] {
				e.inputs[s.Inst.ID] = append(e.inputs[s.Inst.ID],
					inEdge{drv: int32(drv), net: int32(n.ID), si: int32(si)})
			}
		}
	}

	// Waves for the parallel full pass: level = 1 + max(level of
	// combinational inputs).
	if cap(e.level) < len(e.d.Instances) {
		e.level = make([]int32, len(e.d.Instances))
	}
	e.level = e.level[:len(e.d.Instances)]
	maxLevel := int32(0)
	for _, inst := range e.order {
		lvl := int32(0)
		for _, ev := range e.inputs[inst.ID] {
			if int(ev.drv) >= e.nPorts {
				di := int(ev.drv) - e.nPorts
				if e.isComb[di] && e.level[di]+1 > lvl {
					lvl = e.level[di] + 1
				}
			}
		}
		e.level[inst.ID] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	e.waves = make([][]*netlist.Instance, maxLevel+1)
	for _, inst := range e.order {
		e.waves[e.level[inst.ID]] = append(e.waves[e.level[inst.ID]], inst)
	}

	e.resizePass(&e.full)
	e.resizePass(&e.half)
	e.dirtyFull = resizeBools(e.dirtyFull, e.nNodes)
	e.dirtyHalf = resizeBools(e.dirtyHalf, e.nNodes)
	e.resetFrom = int(^uint(0) >> 1)
	return nil
}

// resizePass grows or shrinks a pass's arrays to nNodes and
// re-initializes every slot at or above resetFrom.
func (e *Engine) resizePass(p *pass) {
	old := len(p.arr)
	from := e.resetFrom
	if old < from {
		from = old
	}
	p.arr = resizeFloats(p.arr, e.nNodes)
	p.slew = resizeFloats(p.slew, e.nNodes)
	p.wl = resizeFloats(p.wl, e.nNodes)
	p.prev = resizeInts(p.prev, e.nNodes)
	if cap(p.pref) < e.nNodes {
		np := make([]netlist.PinRef, e.nNodes)
		copy(np, p.pref)
		p.pref = np
	}
	p.pref = p.pref[:e.nNodes]
	for i := from; i < e.nNodes; i++ {
		p.arr[i] = negInf
		p.slew[i] = e.opt.DefaultSlew
		p.wl[i] = 0
		p.prev[i] = -1
		p.pref[i] = netlist.PinRef{}
	}
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		ns := make([]float64, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		ns := make([]int, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		ns := make([]bool, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// resetPass re-initializes every slot of a pass (from-scratch run).
func (e *Engine) resetPass(p *pass) {
	for i := range p.arr {
		p.arr[i] = negInf
		p.slew[i] = e.opt.DefaultSlew
		p.wl[i] = 0
		p.prev[i] = -1
		p.pref[i] = netlist.PinRef{}
	}
}

// levelize orders combinational instances topologically (Kahn) and
// builds the node-indexed combinational fanout table.
func (e *Engine) levelize() error {
	indeg := make([]int, len(e.d.Instances))
	e.fanout = make([][]*netlist.Instance, e.nNodes)
	for _, n := range e.d.Nets {
		if n.Clock {
			continue
		}
		drv, ok := e.refNode(n.Driver)
		if !ok {
			continue
		}
		for _, s := range n.Sinks {
			if s.Inst != nil && e.isComb[s.Inst.ID] {
				indeg[s.Inst.ID]++
				e.fanout[drv] = append(e.fanout[drv], s.Inst)
			}
		}
	}
	var queue []*netlist.Instance
	released := make([]bool, len(e.d.Instances))
	for _, inst := range e.d.Instances {
		if e.isComb[inst.ID] && indeg[inst.ID] == 0 {
			queue = append(queue, inst)
			released[inst.ID] = true
		}
	}
	relax := func(node int) {
		for _, f := range e.fanout[node] {
			indeg[f.ID]--
		}
	}
	for _, inst := range e.d.Instances {
		if inst.Master.IsSequential() {
			relax(e.nodeOfInst(inst))
		}
	}
	for _, p := range e.d.Ports {
		relax(e.nodeOfPort(p))
	}
	for _, inst := range e.d.Instances {
		if e.isComb[inst.ID] && indeg[inst.ID] == 0 && !released[inst.ID] {
			queue = append(queue, inst)
			released[inst.ID] = true
		}
	}
	e.order = e.order[:0]
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		e.order = append(e.order, inst)
		relax(e.nodeOfInst(inst))
		for _, f := range e.fanout[e.nodeOfInst(inst)] {
			if indeg[f.ID] == 0 && !released[f.ID] {
				queue = append(queue, f)
				released[f.ID] = true
			}
		}
	}
	comb := 0
	for _, c := range e.isComb {
		if c {
			comb++
		}
	}
	if len(e.order) != comb {
		return fmt.Errorf("sta: combinational loop detected (%d of %d gates levelized)", len(e.order), comb)
	}
	return nil
}

// Invalidate records edits since the last Run/Update: the ids of
// re-extracted or re-wired nets, resized/moved/added instances, and
// whether the topology changed (instances or nets added or removed,
// sink membership edited). The next Update consumes the set.
func (e *Engine) Invalidate(nets, insts []int, topo bool) {
	e.pendNets = append(e.pendNets, nets...)
	e.pendInsts = append(e.pendInsts, insts...)
	if topo {
		e.pendTopo = true
		if n := e.nPorts + len(e.d.Instances); n < e.resetFrom {
			e.resetFrom = n
		}
	}
}

// Run performs a full from-scratch analysis (also discarding any
// pending invalidation — everything is recomputed anyway).
func (e *Engine) Run(period float64) (*Report, error) {
	if err := e.ex.CheckFinite(); err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	if err := e.rebuildTopo(); err != nil {
		return nil, err
	}
	e.pendNets, e.pendInsts, e.pendTopo = e.pendNets[:0], e.pendInsts[:0], false

	workers := runtime.GOMAXPROCS(0)
	for _, p := range []*pass{&e.full, &e.half} {
		half := p == &e.half
		e.resetPass(p)
		dirty := e.dirtyFull
		if half {
			dirty = e.dirtyHalf
		}
		for i := range dirty {
			dirty[i] = true
		}
		e.seed(p, half, dirty)
		if workers > 1 && len(e.order) >= 512 {
			e.propagateWaves(p, workers)
		} else {
			e.propagate(p, dirty)
		}
		// Leave the scratch set all-false for the next Update (the
		// serial pass only clears the combinational nodes it visits).
		for i := range dirty {
			dirty[i] = false
		}
	}
	e.mFull.Inc()
	e.updateRatio()
	return e.buildReport(period)
}

// Update consumes the pending invalidation and re-analyzes only the
// dirty cone. Results are bit-identical to Run on the same state.
func (e *Engine) Update(period float64) (*Report, error) {
	// Finiteness of the parasitics only needs re-checking where they
	// changed.
	for _, id := range e.pendNets {
		if id < len(e.ex.Nets) {
			if err := checkFiniteNet(e.ex.Nets[id]); err != nil {
				return nil, fmt.Errorf("sta: %w", err)
			}
		}
	}
	if e.pendTopo {
		if err := e.rebuildTopo(); err != nil {
			return nil, err
		}
	}

	frontier := 0
	for _, p := range []*pass{&e.full, &e.half} {
		half := p == &e.half
		dirty := e.dirtyFull
		if half {
			dirty = e.dirtyHalf
		}
		frontier += e.markPending(dirty)
		e.seed(p, half, dirty)
		e.propagate(p, dirty)
	}
	e.pendNets, e.pendInsts, e.pendTopo = e.pendNets[:0], e.pendInsts[:0], false
	e.mInc.Inc()
	e.mFrontier.Observe(float64(frontier))
	e.updateRatio()
	return e.buildReport(period)
}

// markPending seeds the dirty set from the pending net/instance ids:
// sinks and drivers of every dirty net (elm and load changed), every
// dirty instance (master, location, or input membership changed).
// Returns the number of nodes newly marked — the frontier size the
// engine reports to observability.
func (e *Engine) markPending(dirty []bool) int {
	marked := 0
	mark := func(node int) {
		if node >= e.nPorts && e.isComb[node-e.nPorts] {
			if !dirty[node] {
				marked++
			}
			dirty[node] = true
		}
	}
	for _, id := range e.pendNets {
		if id >= len(e.d.Nets) {
			continue
		}
		n := e.d.Nets[id]
		if n.Clock {
			continue
		}
		if drv, ok := e.refNode(n.Driver); ok {
			mark(drv)
		}
		for _, s := range n.Sinks {
			if s.Inst != nil {
				mark(e.nodeOfInst(s.Inst))
			}
		}
	}
	for _, id := range e.pendInsts {
		if id < len(e.d.Instances) {
			mark(e.nPorts + id)
		}
	}
	return marked
}

// seed (re)computes launch arrivals: sequential outputs on the full
// pass, input ports on the pass matching their half-cycle class. Seeds
// are compared against the stored value; a changed seed dirties its
// combinational fanout.
func (e *Engine) seed(p *pass, half bool, dirty []bool) {
	ioRef := 0.0
	if e.opt.Clock != nil {
		ioRef = e.opt.Clock.MeanLatency
	}
	if !half {
		for _, inst := range e.d.Instances {
			if !inst.Master.IsSequential() {
				continue
			}
			node := e.nodeOfInst(inst)
			load := 0.0
			if on := e.outNet[node]; on != nil {
				if rc := e.ex.Nets[on.ID]; rc != nil {
					load = rc.CTotal()
				}
			}
			var v float64
			if inst.Master.Abstract != nil {
				// Hardened abstracts launch at the clock edge; the
				// per-pin clk→out arc and the drive into the parent
				// load are applied per driven net (arcLaunch), since
				// each output pin carries its own arc.
				v = e.clockLatency(inst)
			} else {
				v = e.clockLatency(inst) +
					(inst.Master.ClkQ+inst.Master.DriveRes*load)*e.opt.Corner.CellDelay
			}
			e.setSeed(p, node, v, dirty)
		}
	}
	for _, pt := range e.d.Ports {
		if pt.Dir == cell.DirIn && pt.HalfCycle == half {
			e.setSeed(p, e.nodeOfPort(pt), pt.ExtDelay+ioRef, dirty)
		}
	}
}

func (e *Engine) setSeed(p *pass, node int, v float64, dirty []bool) {
	if p.arr[node] == v {
		return
	}
	p.arr[node] = v
	p.slew[node] = e.opt.DefaultSlew
	for _, f := range e.fanout[node] {
		if e.isComb[f.ID] {
			dirty[e.nPorts+f.ID] = true
		}
	}
}

// arcLaunch returns the launch adjustment of a driver node when it is
// a hardened-abstract output: the pin's clk→out arc (sign-off-absolute,
// so no corner scale) plus the drive into the parent net's load (corner
// scaled like any gate delay). Ordinary drivers return 0 and designs
// without abstracts skip the lookup entirely, keeping flat flows on the
// bit-identical pre-existing path.
func (e *Engine) arcLaunch(drv int, n *netlist.Net, rc *extract.NetRC) float64 {
	if !e.hasAbstract || drv < e.nPorts {
		return 0
	}
	inst := e.d.Instances[drv-e.nPorts]
	if inst.Master.Abstract == nil {
		return 0
	}
	p := inst.Master.Pin(n.Driver.Pin)
	if p == nil {
		return 0
	}
	return p.ClkQ + inst.Master.DriveRes*rc.CTotal()*e.opt.Corner.CellDelay
}

// evalNode computes a combinational instance's output tuple from the
// current state of its inputs — identical arithmetic and tie-break
// order to the original from-scratch pass.
func (e *Engine) evalNode(p *pass, inst *netlist.Instance) (arr, slew, wl float64, prev int, pref netlist.PinRef) {
	node := e.nodeOfInst(inst)
	load := 0.0
	if on := e.outNet[node]; on != nil {
		if rc := e.ex.Nets[on.ID]; rc != nil {
			load = rc.CTotal()
		}
	}
	best := negInf
	bestPrev := -1
	var bestRef netlist.PinRef
	var bestWL float64
	bestSlew := e.opt.DefaultSlew
	for _, ev := range e.inputs[inst.ID] {
		rc := e.ex.Nets[ev.net]
		if rc == nil {
			continue
		}
		ia := p.arr[ev.drv]
		if ia <= negInf {
			continue
		}
		if e.hasAbstract {
			ia += e.arcLaunch(int(ev.drv), e.d.Nets[ev.net], rc)
		}
		elm := rc.ElmoreTo[ev.si]
		inArr := ia + elm
		inSlew := p.slew[ev.drv] + elm // slew degrades along RC wire
		d := inst.Master.Delay(load, inSlew) * e.opt.Corner.CellDelay
		at := inArr + d
		if at > best {
			n := e.d.Nets[ev.net]
			best = at
			bestPrev = int(ev.drv)
			bestRef = n.Driver
			bestWL = p.wl[ev.drv] + dist(n.Driver, n.Sinks[ev.si])
			bestSlew = inst.Master.OutSlew(load)
		}
	}
	if bestPrev < 0 {
		return negInf, e.opt.DefaultSlew, 0, -1, netlist.PinRef{}
	}
	return best, bestSlew, bestWL, bestPrev, bestRef
}

// propagate walks the topological order re-evaluating dirty nodes and
// dirtying their fanout only when a value actually changed.
func (e *Engine) propagate(p *pass, dirty []bool) {
	for _, inst := range e.order {
		node := e.nodeOfInst(inst)
		if !dirty[node] {
			continue
		}
		dirty[node] = false
		arr, slew, wl, prev, pref := e.evalNode(p, inst)
		if arr != p.arr[node] || slew != p.slew[node] || wl != p.wl[node] ||
			prev != p.prev[node] || pref != p.pref[node] {
			p.arr[node] = arr
			p.slew[node] = slew
			p.wl[node] = wl
			p.prev[node] = prev
			p.pref[node] = pref
			for _, f := range e.fanout[node] {
				dirty[e.nPorts+f.ID] = true
			}
		}
	}
}

// propagateWaves evaluates a full pass wave-synchronously: nodes inside
// one level have no mutual dependencies, so they are computed across
// workers; each worker writes only its own nodes' slots and reads only
// strictly earlier levels. The reduction is deterministic because every
// node's value is independent of evaluation order within its wave.
func (e *Engine) propagateWaves(p *pass, workers int) {
	var wg sync.WaitGroup
	for _, wave := range e.waves {
		if len(wave) < 64 || workers < 2 {
			for _, inst := range wave {
				e.commitNode(p, inst)
			}
			continue
		}
		chunk := (len(wave) + workers - 1) / workers
		for lo := 0; lo < len(wave); lo += chunk {
			hi := lo + chunk
			if hi > len(wave) {
				hi = len(wave)
			}
			wg.Add(1)
			go func(part []*netlist.Instance) {
				defer wg.Done()
				for _, inst := range part {
					e.commitNode(p, inst)
				}
			}(wave[lo:hi])
		}
		wg.Wait()
	}
}

func (e *Engine) commitNode(p *pass, inst *netlist.Instance) {
	node := e.nodeOfInst(inst)
	arr, slew, wl, prev, pref := e.evalNode(p, inst)
	p.arr[node] = arr
	p.slew[node] = slew
	p.wl[node] = wl
	p.prev[node] = prev
	p.pref[node] = pref
}

// checkFiniteNet guards one net's parasitics (the incremental
// counterpart of extract.Design.CheckFinite).
func checkFiniteNet(rc *extract.NetRC) error {
	if rc == nil {
		return nil
	}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	name := "?"
	if rc.Net != nil {
		name = rc.Net.Name
	}
	switch {
	case bad(rc.WireC):
		return fmt.Errorf("extract: non-finite wire capacitance %v on net %s", rc.WireC, name)
	case bad(rc.WireR):
		return fmt.Errorf("extract: non-finite wire resistance %v on net %s", rc.WireR, name)
	case bad(rc.PinC):
		return fmt.Errorf("extract: non-finite pin capacitance %v on net %s", rc.PinC, name)
	}
	for i, el := range rc.ElmoreTo {
		if bad(el) {
			return fmt.Errorf("extract: non-finite Elmore delay %v to sink %d of net %s", el, i, name)
		}
	}
	return nil
}
