package sta

import (
	"math"
	"strings"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// pipe builds: clk port, FF1 → k inverters → FF2, all placed along a
// line of the given span. Returns the design plus routing/extraction.
func pipe(t *testing.T, span float64, k int) (*netlist.Design, *extract.Design) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("pipe", lib)
	clk := d.AddPort("clk", cell.DirIn)
	clk.Loc = geom.Pt(0, 0)

	ff1 := d.AddInstance("ff1", lib.MustCell("DFF_X1"))
	ff1.Loc = geom.Pt(10, 10)
	ff2 := d.AddInstance("ff2", lib.MustCell("DFF_X1"))
	ff2.Loc = geom.Pt(10+span, 10)

	prev := netlist.IPin(ff1, "Q")
	for i := 0; i < k; i++ {
		u := d.AddInstance("inv"+itoa(i), lib.MustCell("INV_X2"))
		u.Loc = geom.Pt(10+span*float64(i+1)/float64(k+1), 10)
		d.AddNet("n"+itoa(i), prev, netlist.IPin(u, "A"))
		prev = netlist.IPin(u, "Y")
	}
	d.AddNet("n_end", prev, netlist.IPin(ff2, "D"))
	cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(ff1, "CK"), netlist.IPin(ff2, "CK"))
	cn.Clock = true
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, span+100, 200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	ex := extract.Extract(d, res, db, tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1})
	return d, ex
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestPipelineTiming(t *testing.T) {
	d, ex := pipe(t, 200, 4)
	rep, err := Analyze(d, ex, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 inverters + FF clk-q + setup: tens to hundreds of ps.
	if rep.MinPeriod < 50 || rep.MinPeriod > 1500 {
		t.Fatalf("MinPeriod = %v ps, implausible", rep.MinPeriod)
	}
	if rep.FmaxMHz <= 0 || rep.FmaxMHz != 1e6/rep.MinPeriod {
		t.Fatalf("Fmax = %v", rep.FmaxMHz)
	}
	// At a generous 2000 ps period, slack is positive.
	if rep.WNS <= 0 {
		t.Fatalf("WNS = %v at 2 ns", rep.WNS)
	}
	if rep.Endpoints == 0 {
		t.Fatal("no endpoints")
	}
	// Critical path runs ff1 → … → ff2.
	cp := rep.Critical
	if len(cp.Steps) < 3 {
		t.Fatalf("critical path only %d steps", len(cp.Steps))
	}
	last := cp.Steps[len(cp.Steps)-1].Ref
	if last.Inst == nil || last.Inst.Name != "ff2" {
		t.Fatalf("critical endpoint = %v", last)
	}
	if cp.Wirelength <= 0 {
		t.Fatal("no path wirelength")
	}
}

func TestLongerWireSlower(t *testing.T) {
	d1, ex1 := pipe(t, 100, 2)
	d2, ex2 := pipe(t, 1500, 2)
	r1, err := Analyze(d1, ex1, 3000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(d2, ex2, 3000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.MinPeriod <= r1.MinPeriod {
		t.Fatalf("longer design not slower: %v vs %v", r1.MinPeriod, r2.MinPeriod)
	}
	if r2.Critical.Wirelength <= r1.Critical.Wirelength {
		t.Fatal("longer design has shorter critical wirelength")
	}
}

func TestSlowCornerSlower(t *testing.T) {
	d, exTyp := pipe(t, 400, 3)
	rTyp, err := Analyze(d, exTyp, 3000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := Analyze(d, exTyp, 3000, Options{
		Corner: tech.CornerScale{CellDelay: 1.25, WireR: 1, WireC: 1, Leakage: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.MinPeriod <= rTyp.MinPeriod {
		t.Fatalf("slow corner not slower: %v vs %v", rSlow.MinPeriod, rTyp.MinPeriod)
	}
}

func TestHalfCyclePortConstraint(t *testing.T) {
	// FF → output port, port half-cycle: required period doubles
	// versus the same path with a full-cycle port.
	build := func(half bool) (*netlist.Design, *extract.Design) {
		lib := cell.NewStdLib28(cell.DefaultLibOptions())
		d := netlist.NewDesign("p", lib)
		clk := d.AddPort("clk", cell.DirIn)
		clk.Loc = geom.Pt(0, 0)
		ff := d.AddInstance("ff", lib.MustCell("DFF_X1"))
		ff.Loc = geom.Pt(10, 10)
		out := d.AddPort("dout", cell.DirOut)
		out.Loc = geom.Pt(600, 10)
		out.Layer = "M6"
		out.HalfCycle = half
		d.AddNet("n", netlist.IPin(ff, "Q"), netlist.PPin(out))
		cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(ff, "CK"))
		cn.Clock = true
		beol, _ := tech.NewBEOL28("logic", 6)
		db := route.NewDB(geom.R(0, 0, 700, 100), beol, nil, route.Options{GCellPitch: 10})
		res, err := route.RouteDesign(d, db)
		if err != nil {
			t.Fatal(err)
		}
		ex := extract.Extract(d, res, db, tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1})
		return d, ex
	}
	dF, exF := build(false)
	dH, exH := build(true)
	rF, err := Analyze(dF, exF, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rH, err := Analyze(dH, exH, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := rH.MinPeriod / rF.MinPeriod
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("half-cycle ratio = %v, want ≈2", ratio)
	}
	if !rH.Critical.HalfCycle {
		t.Fatal("critical path not flagged half-cycle")
	}
}

func TestClockTreeLatencyShiftsLaunch(t *testing.T) {
	d, ex := pipe(t, 400, 3)
	rIdeal, err := Analyze(d, ex, 3000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Build a real tree over the two FFs.
	beol, _ := tech.NewBEOL28("logic", 6)
	tree := cts.Build(d, d.Net("clk"), d.Port("clk").Loc, d.Lib, beol, cts.Options{})
	rTree, err := Analyze(d, ex, 3000, Options{Clock: tree})
	if err != nil {
		t.Fatal(err)
	}
	// Launch/capture latencies nearly cancel on a balanced tree; the
	// period must stay within the skew of ideal.
	diff := rTree.MinPeriod - rIdeal.MinPeriod
	if diff < -tree.Skew-1 || diff > tree.Skew+1 {
		t.Fatalf("tree shifted period by %v ps, skew is %v", diff, tree.Skew)
	}
}

func TestSetupIncludedInMinPeriod(t *testing.T) {
	d, ex := pipe(t, 50, 0) // FF → FF direct
	rep, err := Analyze(d, ex, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ff := d.Instance("ff1").Master
	// MinPeriod ≥ ClkQ + setup even with negligible wire.
	if rep.MinPeriod < ff.ClkQ+ff.Setup {
		t.Fatalf("MinPeriod %v < ClkQ+setup %v", rep.MinPeriod, ff.ClkQ+ff.Setup)
	}
}

func TestNoEndpointsError(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("none", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	b := d.AddInstance("b", lib.MustCell("INV_X1"))
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(b, "A"))
	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, 100, 100), beol, nil, route.Options{})
	res, _ := route.RouteDesign(d, db)
	ex := extract.Extract(d, res, db, tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1})
	if _, err := Analyze(d, ex, 1000, Options{}); err == nil {
		t.Fatal("expected error for design without endpoints")
	}
}

func TestHoldAnalysis(t *testing.T) {
	d, ex := pipe(t, 300, 3)
	rep, err := Analyze(d, ex, 2000, Options{CheckHold: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HoldEndpoints == 0 {
		t.Fatal("no hold endpoints analyzed")
	}
	// A 3-inverter path with ideal clock easily meets a 5 ps hold.
	if rep.HoldViolations != 0 {
		t.Fatalf("%d hold violations on a deep path", rep.HoldViolations)
	}
	if rep.HoldWNS <= 0 {
		t.Fatalf("HoldWNS = %v, want positive", rep.HoldWNS)
	}
	// Min path delay cannot exceed max path delay.
	if rep.HoldWNS > rep.Critical.Delay {
		t.Fatalf("hold slack %v exceeds critical delay %v", rep.HoldWNS, rep.Critical.Delay)
	}
	// Without the flag, hold fields stay zero.
	rep2, err := Analyze(d, ex, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.HoldEndpoints != 0 || rep2.HoldWNS != 0 {
		t.Fatal("hold ran without CheckHold")
	}
}

func TestHoldViolationDetected(t *testing.T) {
	// Direct FF→FF with a large artificial capture latency: the data
	// races ahead of the late clock → hold violation.
	d, ex := pipe(t, 40, 0)
	ff2 := d.Instance("ff2")
	tree := &cts.Tree{LatencyOf: map[int]float64{
		d.Instance("ff1").ID: 0,
		ff2.ID:               400, // capture clock arrives 400 ps late
	}}
	rep, err := Analyze(d, ex, 2000, Options{CheckHold: true, Clock: tree})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HoldViolations == 0 {
		t.Fatalf("no hold violation despite 400 ps capture skew (WNS %v)", rep.HoldWNS)
	}
	if rep.HoldWNS >= 0 {
		t.Fatalf("HoldWNS = %v, want negative", rep.HoldWNS)
	}
}

func TestMinPeriodMonotoneInCornerProperty(t *testing.T) {
	// Property: scaling cell delay up never reduces the minimum
	// period.
	d, ex := pipe(t, 500, 4)
	prev := 0.0
	for _, scale := range []float64{0.8, 1.0, 1.1, 1.25, 1.5} {
		rep, err := Analyze(d, ex, 3000, Options{
			Corner: tech.CornerScale{CellDelay: scale, WireR: 1, WireC: 1, Leakage: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MinPeriod < prev {
			t.Fatalf("MinPeriod decreased at scale %v: %v < %v", scale, rep.MinPeriod, prev)
		}
		prev = rep.MinPeriod
	}
}

func TestTopPathsOrderedAndDeduped(t *testing.T) {
	d, ex := pipe(t, 400, 5)
	rep, err := Analyze(d, ex, 2000, Options{TopPaths: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) == 0 {
		t.Fatal("no paths reported")
	}
	if rep.Paths[0].Delay != rep.Critical.Delay {
		t.Fatal("Paths[0] is not the critical path")
	}
	seen := map[string]bool{}
	for _, p := range rep.Paths {
		launch := p.Steps[0].Ref.String()
		if seen[launch] {
			t.Fatalf("duplicate launch %s in top paths", launch)
		}
		seen[launch] = true
	}
}

func TestNonFiniteParasiticsRejected(t *testing.T) {
	d, ex := pipe(t, 200, 4)
	// Poison one RC entry the way corrupt layer tables would.
	for _, rc := range ex.Nets {
		if rc == nil || len(rc.ElmoreTo) == 0 {
			continue
		}
		for i := range rc.ElmoreTo {
			rc.ElmoreTo[i] = math.NaN()
		}
		rc.WireC = math.NaN()
		break
	}
	if _, err := Analyze(d, ex, 2000, Options{}); err == nil {
		t.Fatal("NaN parasitics produced a timing report")
	} else if !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("error does not name the non-finite result: %v", err)
	}
}
