package sta

import (
	"math"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// abstractPair builds clk port → two hardened-abstract instances with
// A.Q driving B.D, routed and extracted at unit corner.
func abstractPair(t *testing.T, clkq, setup, minPeriod float64) (*netlist.Design, *extract.Design) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	abs := &cell.Cell{
		Name: "blk_abs", Kind: cell.KindMacro,
		Width: 50, Height: 50, DriveRes: 2,
		Pins: []cell.Pin{
			{Name: "CK", Dir: cell.DirIn, Cap: 5, Clock: true, Offset: geom.Pt(0, 25), Layer: "M6"},
			{Name: "D", Dir: cell.DirIn, Cap: 3, Offset: geom.Pt(0, 10), Layer: "M6", Setup: setup},
			{Name: "Q", Dir: cell.DirOut, Offset: geom.Pt(50, 10), Layer: "M6", ClkQ: clkq},
		},
		Abstract: &cell.AbstractInfo{SourceFlow: "test", MinPeriodPs: minPeriod},
	}
	lib.Add(abs)

	d := netlist.NewDesign("pair", lib)
	clk := d.AddPort("clk", cell.DirIn)
	clk.Loc = geom.Pt(0, 0)
	a := d.AddInstance("a", abs)
	a.Loc = geom.Pt(10, 10)
	a.Placed = true
	b := d.AddInstance("b", abs)
	b.Loc = geom.Pt(110, 10)
	b.Placed = true
	d.AddNet("x", netlist.IPin(a, "Q"), netlist.IPin(b, "D"))
	cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(a, "CK"), netlist.IPin(b, "CK"))
	cn.Clock = true
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, 300, 200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	ex := extract.Extract(d, res, db, tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1})
	return d, ex
}

// TestAbstractMinPeriodFloor: a hardened block's own sign-off period
// floors the parent clock even when every boundary path has slack.
func TestAbstractMinPeriodFloor(t *testing.T) {
	d, ex := abstractPair(t, 100, 50, 700)
	rep, err := Analyze(d, ex, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinPeriod != 700 {
		t.Fatalf("MinPeriod = %v, want the 700 ps abstract floor", rep.MinPeriod)
	}
	if rep.FmaxMHz != 1e6/700 {
		t.Fatalf("FmaxMHz = %v", rep.FmaxMHz)
	}
	// Both instances contribute a floor endpoint on top of the
	// boundary path endpoints.
	if rep.Endpoints < 2 {
		t.Fatalf("endpoints = %d", rep.Endpoints)
	}
}

// TestAbstractBoundaryArcsConsumed: with a negligible internal floor,
// the parent period is the boundary path — launch clk→out arc, drive
// into the stitched wire, and the capture pin's setup budget — and it
// tracks the per-pin arcs ps for ps.
func TestAbstractBoundaryArcsConsumed(t *testing.T) {
	run := func(clkq, setup float64) float64 {
		d, ex := abstractPair(t, clkq, setup, 1)
		rep, err := Analyze(d, ex, 1000, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MinPeriod
	}
	base := run(100, 50)
	if base < 150 {
		t.Fatalf("boundary path %v ps shorter than its arcs alone", base)
	}
	// Per-pin arcs are corner-absolute: +100 ps of clk→out arc and
	// +30 ps of setup budget move the period by exactly that much.
	if got := run(200, 50); math.Abs(got-base-100) > 1e-9 {
		t.Fatalf("clk→out arc not consumed ps-for-ps: %v vs %v", got, base)
	}
	if got := run(100, 80); math.Abs(got-base-30) > 1e-9 {
		t.Fatalf("setup arc not consumed ps-for-ps: %v vs %v", got, base)
	}
}

// TestAbstractCornerAbsolute: scaling the cell-delay corner must not
// scale the corner-absolute boundary arcs — only the drive-into-load
// term moves.
func TestAbstractCornerAbsolute(t *testing.T) {
	d, ex := abstractPair(t, 100, 50, 1)
	at1, err := Analyze(d, ex, 1000, Options{Corner: tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}})
	if err != nil {
		t.Fatal(err)
	}
	at2, err := Analyze(d, ex, 1000, Options{Corner: tech.CornerScale{CellDelay: 2, WireR: 1, WireC: 1, Leakage: 1}})
	if err != nil {
		t.Fatal(err)
	}
	grow := at2.MinPeriod - at1.MinPeriod
	// The arcs (150 ps combined) must not have doubled; only the
	// DriveRes·Cload launch term may.
	if grow <= 0 || grow >= 150 {
		t.Fatalf("corner scaling moved the period by %v ps — boundary arcs were corner-scaled", grow)
	}
}

// TestBoundaryArcsFromImplementation derives boundary arcs for a
// port-bounded FF design and checks they reflect the internal paths.
func TestBoundaryArcsFromImplementation(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("leaf", lib)
	clk := d.AddPort("clk_i", cell.DirIn)
	clk.Loc = geom.Pt(0, 0)
	clk.Layer = "M6"
	in := d.AddPort("d_i", cell.DirIn)
	in.Loc = geom.Pt(0, 50)
	in.Layer = "M6"
	out := d.AddPort("q_o", cell.DirOut)
	out.Loc = geom.Pt(200, 50)
	out.Layer = "M6"

	ff := d.AddInstance("ff", lib.MustCell("DFF_X1"))
	ff.Loc = geom.Pt(100, 50)
	ff.Placed = true
	d.AddNet("nin", netlist.PPin(in), netlist.IPin(ff, "D"))
	d.AddNet("nout", netlist.IPin(ff, "Q"), netlist.PPin(out))
	cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(ff, "CK"))
	cn.Clock = true
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, 300, 200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	ex := extract.Extract(d, res, db, tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1})

	arcs, err := BoundaryArcs(d, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dff := lib.MustCell("DFF_X1")
	din := arcs["d_i"]
	if din.SetupPs < dff.Setup {
		t.Fatalf("d_i setup budget %v ps below the FF's own %v ps", din.SetupPs, dff.Setup)
	}
	qo := arcs["q_o"]
	if qo.ClkQPs < dff.ClkQ {
		t.Fatalf("q_o clk→out arc %v ps below the FF's own %v ps", qo.ClkQPs, dff.ClkQ)
	}
	if ck := arcs["clk_i"]; ck.SetupPs != 0 || ck.ClkQPs != 0 {
		t.Fatalf("clock port grew arcs: %+v", ck)
	}
}
