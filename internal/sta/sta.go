// Package sta is a static timing analyzer over the placed, routed and
// extracted design: levelized arrival propagation with slew-aware
// linear cell delays and Elmore wire delays, launch/capture through the
// synthesized clock tree's per-sink latencies, setup checks at
// flip-flops and clocked macros, and the half-cycle inter-tile port
// constraints of the OpenPiton tile methodology (paper §V-1).
//
// The analyzer reports the minimum feasible clock period (and thus
// f_max, the paper's performance metric), worst slack at a target
// period, and the critical path with its routed wirelength.
package sta

import (
	"fmt"
	"math"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
	"macro3d/internal/tech"
)

// Options configures an analysis run.
type Options struct {
	Corner tech.CornerScale
	// Clock provides per-sink latencies; nil analyses with an ideal
	// clock (zero latency, zero skew).
	Clock *cts.Tree
	// DefaultSlew is the slew at launch points, ps (default 30).
	DefaultSlew float64
	// TopPaths is the number of worst paths to trace into
	// Report.Paths (default 8; Critical is always Paths[0]).
	TopPaths int
	// CheckHold adds a min-delay propagation pass and hold checks at
	// sequential endpoints (the paper signs off setup only; hold is an
	// extension).
	CheckHold bool
	// SkewGuard adds margin to every setup check, ps (default 0 — the
	// tree's real latencies already capture skew).
	SkewGuard float64
}

func (o Options) withDefaults() Options {
	if o.Corner.CellDelay == 0 {
		o.Corner = tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
	}
	if o.DefaultSlew <= 0 {
		o.DefaultSlew = 30
	}
	return o
}

// PathStep is one hop of a reported path.
type PathStep struct {
	Ref     netlist.PinRef
	Arrival float64 // ps
}

// Path is a traced critical path.
type Path struct {
	Steps      []PathStep
	Delay      float64 // ps, launch to endpoint data arrival
	Wirelength float64 // µm along the path
	HalfCycle  bool    // launched/captured by a half-cycle port
}

// Report is the analysis outcome.
type Report struct {
	// MinPeriod is the smallest clock period meeting every constraint,
	// ps.
	MinPeriod float64
	// FmaxMHz = 1e6 / MinPeriod.
	FmaxMHz float64
	// WNS at the analyzed period (ps); negative = violated.
	WNS float64
	// TNS sums negative endpoint slacks, ps.
	TNS float64
	// Critical is the path that sets MinPeriod.
	Critical Path
	// Paths holds the TopPaths worst paths, most critical first, at
	// most one per distinct launch node.
	Paths []Path
	// Endpoints analyzed.
	Endpoints int

	// Hold results (only when Options.CheckHold).
	HoldWNS        float64
	HoldViolations int
	HoldEndpoints  int
}

// node ids: instances 0..len(Instances)-1, ports after.
type analyzer struct {
	d   *netlist.Design
	ex  *extract.Design
	opt Options

	nNodes int

	arr  []float64 // arrival at node output (ps); -inf = unreached
	slew []float64
	wl   []float64 // path wirelength to node, µm
	prev []int     // predecessor node for path trace
	pref []netlist.PinRef

	// per-node launch latency already included in arr (for reporting).
	outNet []*netlist.Net // net driven by node, nil if none
}

func (a *analyzer) nodeOfInst(i *netlist.Instance) int { return i.ID }
func (a *analyzer) nodeOfPort(p *netlist.Port) int     { return len(a.d.Instances) + p.ID }

// clockLatency returns the tree latency of a sequential instance.
func (a *analyzer) clockLatency(inst *netlist.Instance) float64 {
	if a.opt.Clock == nil {
		return 0
	}
	return a.opt.Clock.LatencyOf[inst.ID]
}

// Analyze runs setup analysis. period is the target clock period in ps
// (used for slack; MinPeriod is computed regardless).
func Analyze(d *netlist.Design, ex *extract.Design, period float64, opt Options) (*Report, error) {
	// Non-finite parasitics make NaN arrivals that silently drop
	// endpoints from the comparisons below; reject them by name
	// instead.
	if err := ex.CheckFinite(); err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	opt = opt.withDefaults()
	a := &analyzer{d: d, ex: ex, opt: opt, nNodes: len(d.Instances) + len(d.Ports)}

	order, err := a.levelize()
	if err != nil {
		return nil, err
	}

	rep := &Report{}

	// I/O constraints reference a virtual port clock at the tree's
	// mean insertion delay (a balanced tree makes every tile pin see
	// nearly this edge), so half-cycle budgets measure tile-relative
	// delay rather than double-counting the absolute clock latency —
	// essential when the same tile is verified inside a deep-tree
	// array (§V-1).
	ioRef := 0.0
	if opt.Clock != nil {
		ioRef = opt.Clock.MeanLatency
	}

	// Pass 1: full-cycle launches (sequential elements; non-half-cycle
	// input ports).
	a.initArrays()
	for _, inst := range d.Instances {
		if inst.Master.IsSequential() {
			n := a.nodeOfInst(inst)
			// Launch = clock latency + clk→Q + output drive into the
			// extracted load of the driven net.
			load := 0.0
			if on := a.outNet[n]; on != nil {
				if rc := ex.Nets[on.ID]; rc != nil {
					load = rc.CTotal()
				}
			}
			a.arr[n] = a.clockLatency(inst) +
				(inst.Master.ClkQ+inst.Master.DriveRes*load)*opt.Corner.CellDelay
			a.slew[n] = opt.DefaultSlew
		}
	}
	for _, p := range d.Ports {
		if p.Dir == cell.DirIn && !p.HalfCycle {
			n := a.nodeOfPort(p)
			a.arr[n] = p.ExtDelay + ioRef
			a.slew[n] = opt.DefaultSlew
		}
	}
	a.propagate(order)
	full := a.snapshot()

	// Pass 2: half-cycle port launches only.
	a.initArrays()
	for _, p := range d.Ports {
		if p.Dir == cell.DirIn && p.HalfCycle {
			n := a.nodeOfPort(p)
			a.arr[n] = p.ExtDelay + ioRef
			a.slew[n] = opt.DefaultSlew
		}
	}
	a.propagate(order)
	half := a.snapshot()

	// Endpoint checks.
	type endpoint struct {
		req    float64 // minimum period this endpoint demands
		node   int     // launching-side node for path tracing
		sinkWL float64
		ref    netlist.PinRef
		delay  float64
		isHalf bool
		snap   *snap
	}
	var all []endpoint

	consider := func(e endpoint, slackAt func(p float64) float64) {
		rep.Endpoints++
		s := slackAt(period)
		if s < 0 {
			rep.TNS += s
		}
		if s < rep.WNS || rep.Endpoints == 1 {
			rep.WNS = s
		}
		all = append(all, e)
	}

	for _, n := range d.Nets {
		if n.Clock {
			continue
		}
		rc := ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drvNode, ok := a.refNode(n.Driver)
		if !ok {
			continue
		}
		for si, s := range n.Sinks {
			elm := rc.ElmoreTo[si] // already corner-scaled by extraction
			// Endpoint classification.
			switch {
			case s.Inst != nil && s.Inst.Master.IsSequential() && !s.Inst.Master.Pin(s.Pin).Clock:
				setup := s.Inst.Master.Setup * opt.Corner.CellDelay
				capLat := a.clockLatency(s.Inst)
				// Full-cycle launched paths.
				if fa := full.arr[drvNode]; fa > negInf {
					at := fa + elm
					req := at + setup - capLat + opt.SkewGuard
					consider(endpoint{
						req: req, node: drvNode, ref: s,
						delay: at, snap: full,
						sinkWL: full.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p + capLat - setup - at - opt.SkewGuard })
				}
				// Half-cycle launched paths: budget T/2.
				if ha := half.arr[drvNode]; ha > negInf {
					at := ha + elm
					req := 2 * (at + setup - capLat + opt.SkewGuard)
					consider(endpoint{
						req: req, node: drvNode, ref: s,
						delay: at, isHalf: true, snap: half,
						sinkWL: half.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p/2 + capLat - setup - at - opt.SkewGuard })
				}
			case s.Port != nil && s.Port.Dir == cell.DirOut:
				if fa := full.arr[drvNode]; fa > negInf {
					at := fa + elm
					div := 1.0
					if s.Port.HalfCycle {
						div = 2
					}
					// Delay relative to the virtual port clock edge.
					rel := at - ioRef
					req := rel * div
					consider(endpoint{
						req: req, node: drvNode, ref: s,
						delay: at, isHalf: s.Port.HalfCycle, snap: full,
						sinkWL: full.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p/div - rel })
				}
				// Port-to-port paths (half-launch to half-capture)
				// are feedthroughs; OpenPiton tiles register at both
				// ends, so they are rare — still checked.
				if ha := half.arr[drvNode]; ha > negInf && s.Port.HalfCycle {
					at := ha + elm
					rel := at - ioRef
					consider(endpoint{
						req: rel, node: drvNode, ref: s,
						delay: at, isHalf: true, snap: half,
						sinkWL: half.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p - rel })
				}
			}
		}
	}

	if opt.CheckHold {
		a.analyzeHold(order, rep)
	}

	if len(all) == 0 {
		return nil, fmt.Errorf("sta: no constrained endpoints found")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].req > all[j].req })
	worst := all[0]
	rep.MinPeriod = worst.req
	rep.FmaxMHz = 1e6 / worst.req
	rep.Critical = a.trace(worst.node, worst.snap, worst.ref, worst.delay, worst.sinkWL, worst.isHalf)

	// Top-K paths, one per distinct launch node so the optimizer sees
	// independent problems rather than K sinks of one bus.
	k := opt.TopPaths
	if k <= 0 {
		k = 8
	}
	seenNode := map[int]bool{}
	for _, e := range all {
		if len(rep.Paths) >= k {
			break
		}
		if seenNode[e.node] {
			continue
		}
		seenNode[e.node] = true
		rep.Paths = append(rep.Paths, a.trace(e.node, e.snap, e.ref, e.delay, e.sinkWL, e.isHalf))
	}
	// Non-finite results mean corrupt parasitics or delay tables
	// upstream; fail the analysis instead of reporting NaN timing.
	for _, q := range []struct {
		name string
		val  float64
	}{
		{"min period", rep.MinPeriod},
		{"WNS", rep.WNS},
		{"TNS", rep.TNS},
		{"hold WNS", rep.HoldWNS},
	} {
		if math.IsNaN(q.val) || math.IsInf(q.val, 0) {
			return nil, fmt.Errorf("sta: non-finite %s (%v) — corrupt parasitics upstream", q.name, q.val)
		}
	}
	return rep, nil
}

const negInf = -1e30

type snap struct {
	arr, slew, wl []float64
	prev          []int
	pref          []netlist.PinRef
}

func (a *analyzer) snapshot() *snap {
	return &snap{
		arr:  append([]float64(nil), a.arr...),
		slew: append([]float64(nil), a.slew...),
		wl:   append([]float64(nil), a.wl...),
		prev: append([]int(nil), a.prev...),
		pref: append([]netlist.PinRef(nil), a.pref...),
	}
}

func (a *analyzer) initArrays() {
	if a.arr == nil {
		a.arr = make([]float64, a.nNodes)
		a.slew = make([]float64, a.nNodes)
		a.wl = make([]float64, a.nNodes)
		a.prev = make([]int, a.nNodes)
		a.pref = make([]netlist.PinRef, a.nNodes)
		a.outNet = make([]*netlist.Net, a.nNodes)
		for _, n := range a.d.Nets {
			if n.Clock {
				continue
			}
			if id, ok := a.refNode(n.Driver); ok {
				a.outNet[id] = n
			}
		}
	}
	for i := range a.arr {
		a.arr[i] = negInf
		a.slew[i] = a.opt.DefaultSlew
		a.wl[i] = 0
		a.prev[i] = -1
	}
}

func (a *analyzer) refNode(r netlist.PinRef) (int, bool) {
	if r.Port != nil {
		return a.nodeOfPort(r.Port), true
	}
	if r.Inst != nil {
		return a.nodeOfInst(r.Inst), true
	}
	return 0, false
}

// levelize orders combinational instances topologically (Kahn).
func (a *analyzer) levelize() ([]*netlist.Instance, error) {
	indeg := make([]int, len(a.d.Instances))
	fanout := make([][]*netlist.Instance, a.nNodes)
	isComb := func(i *netlist.Instance) bool {
		return !i.Master.IsSequential() && i.Master.Kind != cell.KindFiller && i.Master.Output() != nil
	}
	for _, n := range a.d.Nets {
		if n.Clock {
			continue
		}
		drv, ok := a.refNode(n.Driver)
		if !ok {
			continue
		}
		for _, s := range n.Sinks {
			if s.Inst != nil && isComb(s.Inst) {
				indeg[s.Inst.ID]++
				fanout[drv] = append(fanout[drv], s.Inst)
			}
		}
	}
	var queue []*netlist.Instance
	// Seeds: combinational gates with no driven inputs, plus fanout of
	// sequentials and ports (handled by decrementing below). Start by
	// releasing all non-comb sources.
	released := make([]bool, len(a.d.Instances))
	for _, inst := range a.d.Instances {
		if isComb(inst) && indeg[inst.ID] == 0 {
			queue = append(queue, inst)
			released[inst.ID] = true
		}
	}
	// Release fanout of sequentials/ports.
	relax := func(node int) {
		for _, f := range fanout[node] {
			indeg[f.ID]--
		}
	}
	for _, inst := range a.d.Instances {
		if inst.Master.IsSequential() {
			relax(a.nodeOfInst(inst))
		}
	}
	for _, p := range a.d.Ports {
		relax(a.nodeOfPort(p))
	}
	for _, inst := range a.d.Instances {
		if isComb(inst) && indeg[inst.ID] == 0 && !released[inst.ID] {
			queue = append(queue, inst)
			released[inst.ID] = true
		}
	}
	var order []*netlist.Instance
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		order = append(order, inst)
		relax(a.nodeOfInst(inst))
		for _, f := range fanout[a.nodeOfInst(inst)] {
			if indeg[f.ID] == 0 && !released[f.ID] {
				queue = append(queue, f)
				released[f.ID] = true
			}
		}
	}
	// Verify completeness.
	comb := 0
	for _, inst := range a.d.Instances {
		if isComb(inst) {
			comb++
		}
	}
	if len(order) != comb {
		return nil, fmt.Errorf("sta: combinational loop detected (%d of %d gates levelized)", len(order), comb)
	}
	return order, nil
}

// propagate computes arrivals through the combinational order.
func (a *analyzer) propagate(order []*netlist.Instance) {
	// Per-instance input arrivals come from the nets driving them; we
	// need sink-side lookup: iterate nets once building input events.
	type inEvent struct {
		drv  int
		elm  float64
		ref  netlist.PinRef // the sink pin (for slew sensitivity)
		from netlist.PinRef // driver ref (for distance)
	}
	inputs := make([][]inEvent, len(a.d.Instances))
	for _, n := range a.d.Nets {
		if n.Clock {
			continue
		}
		rc := a.ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drv, ok := a.refNode(n.Driver)
		if !ok {
			continue
		}
		for si, s := range n.Sinks {
			if s.Inst != nil && !s.Inst.Master.IsSequential() && s.Inst.Master.Output() != nil {
				inputs[s.Inst.ID] = append(inputs[s.Inst.ID], inEvent{
					drv: drv, elm: rc.ElmoreTo[si], ref: s, from: n.Driver,
				})
			}
		}
	}
	for _, inst := range order {
		node := a.nodeOfInst(inst)
		load := 0.0
		if on := a.outNet[node]; on != nil {
			if rc := a.ex.Nets[on.ID]; rc != nil {
				load = rc.CTotal()
			}
		}
		best := negInf
		var bestPrev int = -1
		var bestRef netlist.PinRef
		var bestWL float64
		var bestSlew float64 = a.opt.DefaultSlew
		for _, ev := range inputs[inst.ID] {
			ia := a.arr[ev.drv]
			if ia <= negInf {
				continue
			}
			inArr := ia + ev.elm
			inSlew := a.slew[ev.drv] + ev.elm // slew degrades along RC wire
			d := inst.Master.Delay(load, inSlew) * a.opt.Corner.CellDelay
			at := inArr + d
			if at > best {
				best = at
				bestPrev = ev.drv
				bestRef = ev.from
				bestWL = a.wl[ev.drv] + dist(ev.from, ev.ref)
				bestSlew = inst.Master.OutSlew(load)
			}
		}
		if bestPrev >= 0 {
			a.arr[node] = best
			a.prev[node] = bestPrev
			a.pref[node] = bestRef
			a.wl[node] = bestWL
			a.slew[node] = bestSlew
		}
	}
}

// dist is the Manhattan distance between two connection points, µm.
func dist(a, b netlist.PinRef) float64 {
	return a.Loc().Manhattan(b.Loc())
}

// trace reconstructs the critical path from the endpoint's launch node.
func (a *analyzer) trace(node int, s *snap, end netlist.PinRef, delay, wl float64, isHalf bool) Path {
	p := Path{Delay: delay, Wirelength: wl, HalfCycle: isHalf}
	var steps []PathStep
	steps = append(steps, PathStep{Ref: end, Arrival: delay})
	for n := node; n >= 0; n = s.prev[n] {
		steps = append(steps, PathStep{Ref: a.nodeRef(n), Arrival: s.arr[n]})
	}
	// Reverse.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	p.Steps = steps
	return p
}

// nodeRef reconstructs a PinRef describing a node's output.
func (a *analyzer) nodeRef(n int) netlist.PinRef {
	if n < len(a.d.Instances) {
		inst := a.d.Instances[n]
		if out := inst.Master.Output(); out != nil {
			return netlist.IPin(inst, out.Name)
		}
		return netlist.PinRef{Inst: inst}
	}
	return netlist.PPin(a.d.Ports[n-len(a.d.Instances)])
}

var _ = math.Inf
