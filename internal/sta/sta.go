// Package sta is a static timing analyzer over the placed, routed and
// extracted design: levelized arrival propagation with slew-aware
// linear cell delays and Elmore wire delays, launch/capture through the
// synthesized clock tree's per-sink latencies, setup checks at
// flip-flops and clocked macros, and the half-cycle inter-tile port
// constraints of the OpenPiton tile methodology (paper §V-1).
//
// The analyzer reports the minimum feasible clock period (and thus
// f_max, the paper's performance metric), worst slack at a target
// period, and the critical path with its routed wirelength.
//
// Two entry points exist: Analyze is the one-shot from-scratch run,
// and Engine is the persistent incremental form (NewEngine → Run →
// Invalidate/Update) that optimization loops use to re-analyze only
// the dirty cone after each edit. Both produce bit-identical reports.
package sta

import (
	"fmt"
	"math"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/tech"
)

// Options configures an analysis run.
type Options struct {
	Corner tech.CornerScale
	// Clock provides per-sink latencies; nil analyses with an ideal
	// clock (zero latency, zero skew).
	Clock *cts.Tree
	// DefaultSlew is the slew at launch points, ps (default 30).
	DefaultSlew float64
	// TopPaths is the number of worst paths to trace into
	// Report.Paths (default 8; Critical is always Paths[0]).
	TopPaths int
	// CheckHold adds a min-delay propagation pass and hold checks at
	// sequential endpoints (the paper signs off setup only; hold is an
	// extension).
	CheckHold bool
	// SkewGuard adds margin to every setup check, ps (default 0 — the
	// tree's real latencies already capture skew).
	SkewGuard float64
	// Obs, when non-nil, locates the run's metric registry: the
	// engine publishes full-run/incremental-update counts and
	// dirty-frontier sizes there. nil disables instrumentation.
	Obs *obs.Span
}

func (o Options) withDefaults() Options {
	if o.Corner.CellDelay == 0 {
		o.Corner = tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
	}
	if o.DefaultSlew <= 0 {
		o.DefaultSlew = 30
	}
	return o
}

// PathStep is one hop of a reported path.
type PathStep struct {
	Ref     netlist.PinRef
	Arrival float64 // ps
}

// Path is a traced critical path.
type Path struct {
	Steps      []PathStep
	Delay      float64 // ps, launch to endpoint data arrival
	Wirelength float64 // µm along the path
	HalfCycle  bool    // launched/captured by a half-cycle port
}

// Report is the analysis outcome.
type Report struct {
	// MinPeriod is the smallest clock period meeting every constraint,
	// ps.
	MinPeriod float64
	// FmaxMHz = 1e6 / MinPeriod.
	FmaxMHz float64
	// WNS at the analyzed period (ps); negative = violated.
	WNS float64
	// TNS sums negative endpoint slacks, ps.
	TNS float64
	// Critical is the path that sets MinPeriod.
	Critical Path
	// Paths holds the TopPaths worst paths, most critical first, at
	// most one per distinct launch node.
	Paths []Path
	// Endpoints analyzed.
	Endpoints int

	// Hold results (only when Options.CheckHold).
	HoldWNS        float64
	HoldViolations int
	HoldEndpoints  int
}

const negInf = -1e30

// Analyze runs setup analysis. period is the target clock period in ps
// (used for slack; MinPeriod is computed regardless).
func Analyze(d *netlist.Design, ex *extract.Design, period float64, opt Options) (*Report, error) {
	e, err := NewEngine(d, ex, opt)
	if err != nil {
		return nil, err
	}
	return e.Run(period)
}

// buildReport runs the endpoint checks over the current full/half pass
// state and assembles the report: minimum period, slacks, critical
// paths, optional hold analysis.
func (e *Engine) buildReport(period float64) (*Report, error) {
	d, ex, opt := e.d, e.ex, e.opt
	rep := &Report{}

	// I/O constraints reference a virtual port clock at the tree's
	// mean insertion delay (a balanced tree makes every tile pin see
	// nearly this edge), so half-cycle budgets measure tile-relative
	// delay rather than double-counting the absolute clock latency —
	// essential when the same tile is verified inside a deep-tree
	// array (§V-1).
	ioRef := 0.0
	if opt.Clock != nil {
		ioRef = opt.Clock.MeanLatency
	}
	full, half := &e.full, &e.half

	// Endpoint checks.
	type endpoint struct {
		req    float64 // minimum period this endpoint demands
		node   int     // launching-side node for path tracing
		sinkWL float64
		ref    netlist.PinRef
		delay  float64
		isHalf bool
		snap   *pass
	}
	var all []endpoint

	consider := func(e endpoint, slackAt func(p float64) float64) {
		rep.Endpoints++
		s := slackAt(period)
		if s < 0 {
			rep.TNS += s
		}
		if s < rep.WNS || rep.Endpoints == 1 {
			rep.WNS = s
		}
		all = append(all, e)
	}

	for _, n := range d.Nets {
		if n.Clock {
			continue
		}
		rc := ex.Nets[n.ID]
		if rc == nil {
			continue
		}
		drvNode, ok := e.refNode(n.Driver)
		if !ok {
			continue
		}
		// Launch adjustment when the driver is a hardened-abstract
		// output pin (0 otherwise; see Engine.arcLaunch).
		adj := 0.0
		if e.hasAbstract {
			adj = e.arcLaunch(drvNode, n, rc)
		}
		for si, s := range n.Sinks {
			elm := rc.ElmoreTo[si] // already corner-scaled by extraction
			// Endpoint classification.
			switch {
			case s.Inst != nil && s.Inst.Master.IsSequential() && !s.Inst.Master.Pin(s.Pin).Clock:
				setup := s.Inst.Master.Setup * opt.Corner.CellDelay
				if s.Inst.Master.Abstract != nil {
					// A hardened abstract's data-input setup is the
					// pin's full internal budget, already sign-off
					// absolute — no corner scale.
					if p := s.Inst.Master.Pin(s.Pin); p != nil {
						setup = p.Setup
					}
				}
				capLat := e.clockLatency(s.Inst)
				// Full-cycle launched paths.
				if fa := full.arr[drvNode]; fa > negInf {
					at := fa + adj + elm
					req := at + setup - capLat + opt.SkewGuard
					consider(endpoint{
						req: req, node: drvNode, ref: s,
						delay: at, snap: full,
						sinkWL: full.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p + capLat - setup - at - opt.SkewGuard })
				}
				// Half-cycle launched paths: budget T/2.
				if ha := half.arr[drvNode]; ha > negInf {
					at := ha + adj + elm
					req := 2 * (at + setup - capLat + opt.SkewGuard)
					consider(endpoint{
						req: req, node: drvNode, ref: s,
						delay: at, isHalf: true, snap: half,
						sinkWL: half.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p/2 + capLat - setup - at - opt.SkewGuard })
				}
			case s.Port != nil && s.Port.Dir == cell.DirOut:
				if fa := full.arr[drvNode]; fa > negInf {
					at := fa + adj + elm
					div := 1.0
					if s.Port.HalfCycle {
						div = 2
					}
					// Delay relative to the virtual port clock edge.
					rel := at - ioRef
					req := rel * div
					consider(endpoint{
						req: req, node: drvNode, ref: s,
						delay: at, isHalf: s.Port.HalfCycle, snap: full,
						sinkWL: full.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p/div - rel })
				}
				// Port-to-port paths (half-launch to half-capture)
				// are feedthroughs; OpenPiton tiles register at both
				// ends, so they are rare — still checked.
				if ha := half.arr[drvNode]; ha > negInf && s.Port.HalfCycle {
					at := ha + adj + elm
					rel := at - ioRef
					consider(endpoint{
						req: rel, node: drvNode, ref: s,
						delay: at, isHalf: true, snap: half,
						sinkWL: half.wl[drvNode] + dist(n.Driver, s),
					}, func(p float64) float64 { return p - rel })
				}
			}
		}
	}

	if opt.CheckHold {
		e.analyzeHold(rep)
	}

	if len(all) == 0 {
		return nil, fmt.Errorf("sta: no constrained endpoints found")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].req > all[j].req })
	worst := all[0]
	rep.MinPeriod = worst.req
	rep.FmaxMHz = 1e6 / worst.req
	rep.Critical = e.trace(worst.node, worst.snap, worst.ref, worst.delay, worst.sinkWL, worst.isHalf)

	// A hardened abstract's own sign-off period floors the parent clock:
	// no boundary path can relax what the block needs internally.
	if e.hasAbstract {
		for _, inst := range d.Instances {
			a := inst.Master.Abstract
			if a == nil || a.MinPeriodPs <= 0 {
				continue
			}
			rep.Endpoints++
			if s := period - a.MinPeriodPs; s < 0 {
				rep.TNS += s
				if s < rep.WNS {
					rep.WNS = s
				}
			}
			if a.MinPeriodPs > rep.MinPeriod {
				rep.MinPeriod = a.MinPeriodPs
				rep.FmaxMHz = 1e6 / a.MinPeriodPs
			}
		}
	}

	// Top-K paths, one per distinct launch node so the optimizer sees
	// independent problems rather than K sinks of one bus.
	k := opt.TopPaths
	if k <= 0 {
		k = 8
	}
	seenNode := map[int]bool{}
	for _, ep := range all {
		if len(rep.Paths) >= k {
			break
		}
		if seenNode[ep.node] {
			continue
		}
		seenNode[ep.node] = true
		rep.Paths = append(rep.Paths, e.trace(ep.node, ep.snap, ep.ref, ep.delay, ep.sinkWL, ep.isHalf))
	}
	// Non-finite results mean corrupt parasitics or delay tables
	// upstream; fail the analysis instead of reporting NaN timing.
	for _, q := range []struct {
		name string
		val  float64
	}{
		{"min period", rep.MinPeriod},
		{"WNS", rep.WNS},
		{"TNS", rep.TNS},
		{"hold WNS", rep.HoldWNS},
	} {
		if math.IsNaN(q.val) || math.IsInf(q.val, 0) {
			return nil, fmt.Errorf("sta: non-finite %s (%v) — corrupt parasitics upstream", q.name, q.val)
		}
	}
	return rep, nil
}

// dist is the Manhattan distance between two connection points, µm.
func dist(a, b netlist.PinRef) float64 {
	return a.Loc().Manhattan(b.Loc())
}

// trace reconstructs the critical path from the endpoint's launch node.
func (e *Engine) trace(node int, s *pass, end netlist.PinRef, delay, wl float64, isHalf bool) Path {
	p := Path{Delay: delay, Wirelength: wl, HalfCycle: isHalf}
	var steps []PathStep
	steps = append(steps, PathStep{Ref: end, Arrival: delay})
	for n := node; n >= 0; n = s.prev[n] {
		steps = append(steps, PathStep{Ref: e.nodeRef(n), Arrival: s.arr[n]})
	}
	// Reverse.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	p.Steps = steps
	return p
}

// nodeRef reconstructs a PinRef describing a node's output.
func (e *Engine) nodeRef(n int) netlist.PinRef {
	if n < e.nPorts {
		return netlist.PPin(e.d.Ports[n])
	}
	inst := e.d.Instances[n-e.nPorts]
	if out := inst.Master.Output(); out != nil {
		return netlist.IPin(inst, out.Name)
	}
	return netlist.PinRef{Inst: inst}
}
