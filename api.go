// Package macro3d is a from-scratch Go implementation of the Macro-3D
// physical-design methodology for face-to-face-stacked heterogeneous
// 3D ICs (Bamberg et al., DATE 2020), together with the complete
// physical-design substrate it needs — synthetic 28 nm technology and
// cell/SRAM libraries, an OpenPiton-like benchmark generator,
// placement, clock-tree synthesis, global routing, RC extraction,
// static timing, power analysis, timing optimization — and the three
// baseline flows the paper compares against (2D, Shrunk-2D,
// Compact-2D).
//
// The quickest route through the API:
//
//	cfg := macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1}
//	ppa2d, _, err := macro3d.Run2D(cfg)
//	ppa3d, _, _, err := macro3d.RunMacro3D(cfg)
//
// and for the paper's experiments:
//
//	t2, err := macro3d.RunTableII(1)
//	fmt.Print(t2.Format())
//
// The packages under internal/ hold the implementation; this package
// re-exports the stable surface.
package macro3d

import (
	"context"
	"io"

	"macro3d/internal/cell"
	"macro3d/internal/core"
	"macro3d/internal/flows"
	"macro3d/internal/gds"
	"macro3d/internal/geom"
	"macro3d/internal/lefdef"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/piton"
	"macro3d/internal/report"
	"macro3d/internal/stash"
	"macro3d/internal/tech"
	"macro3d/internal/viz"
)

// --- Benchmark generation ---

// TileConfig selects the OpenPiton-like tile architecture.
type TileConfig = piton.Config

// Tile is a generated benchmark netlist plus its tiling port plan.
type Tile = piton.Tile

// SmallCache returns the paper's small-cache tile configuration
// (8 kB L1I, 16 kB L1D, 16 kB L2, 256 kB L3).
func SmallCache() TileConfig { return piton.SmallCache() }

// LargeCache returns the paper's modern/large-cache tile configuration
// (16 kB L1I/L1D, 128 kB L2, 1 MB L3).
func LargeCache() TileConfig { return piton.LargeCache() }

// GenerateTile builds the benchmark netlist for a configuration.
func GenerateTile(cfg TileConfig) (*Tile, error) { return piton.Generate(cfg) }

// SensorConfig describes a sensor-on-logic SoC (the paper's second
// heterogeneous use case).
type SensorConfig = piton.SensorConfig

// DefaultSensorSoC returns a 16-sensor imaging-style SoC configuration.
func DefaultSensorSoC() SensorConfig { return piton.DefaultSensorSoC() }

// GenerateSensorSoC builds a sensor-on-logic netlist. Run it through
// Run2D/RunMacro3D by setting FlowConfig.Generator:
//
//	cfg := macro3d.FlowConfig{Generator: func() (*macro3d.Tile, error) {
//		return macro3d.GenerateSensorSoC(macro3d.DefaultSensorSoC())
//	}}
func GenerateSensorSoC(cfg SensorConfig) (*Tile, error) { return piton.GenerateSensorSoC(cfg) }

// --- Technology ---

// Tech bundles the process node: cell grid, supply, BEOL, corners.
type Tech = tech.Tech

// BEOL is an ordered metal stack.
type BEOL = tech.BEOL

// F2FSpec is the face-to-face bonding via technology.
type F2FSpec = tech.F2FSpec

// New28 returns the synthetic 28 nm technology with the given
// logic-die metal count.
func New28(logicMetals int) (*Tech, error) { return tech.New28(logicMetals) }

// NewBEOL28 builds a single-die 28 nm metal stack.
func NewBEOL28(name string, layers int) (*BEOL, error) { return tech.NewBEOL28(name, layers) }

// CombineBEOL builds the Macro-3D combined two-die stack: logic
// metals, the F2F via, then the macro-die metals renamed with "_MD".
func CombineBEOL(logic, macro *BEOL, f2f F2FSpec) (*BEOL, error) {
	return tech.Combine(logic, macro, f2f)
}

// DefaultF2F returns the paper's F2F via parameters (1 µm pitch,
// 0.5 µm bump, 44 mΩ, 1.0 fF).
func DefaultF2F() F2FSpec { return tech.DefaultF2F() }

// --- Cells and netlists ---

// Cell is a library master (standard cell or hard macro).
type Cell = cell.Cell

// Library is a set of masters with sizing families.
type Library = cell.Library

// SRAMSpec requests a memory macro from the synthetic compiler.
type SRAMSpec = cell.SRAMSpec

// NewSRAM compiles a memory macro: capacity-scaled area/timing/energy,
// pins on M4, M1–M4 obstructions.
func NewSRAM(spec SRAMSpec) (*Cell, error) { return cell.NewSRAM(spec) }

// NewSensor compiles a sensor/analog macro for sensor-on-logic stacks.
func NewSensor(name string, w, h float64, dataBits int) (*Cell, error) {
	return cell.NewSensor(name, w, h, dataBits)
}

// NewLibrary returns an empty cell library (e.g. to hold a single
// hardened abstract for LEF export).
func NewLibrary(name string) *Library { return cell.NewLibrary(name) }

// NewStdLib28 builds the synthetic 28 nm standard-cell library.
func NewStdLib28(opt cell.LibOptions) *Library { return cell.NewStdLib28(opt) }

// DefaultLibOptions returns the 28 nm library defaults.
func DefaultLibOptions() cell.LibOptions { return cell.DefaultLibOptions() }

// Design is a flat gate-level netlist with placement state.
type Design = netlist.Design

// NewDesign returns an empty design over a library.
func NewDesign(name string, lib *Library) *Design { return netlist.NewDesign(name, lib) }

// --- The Macro-3D core transformations ---

// MoLDesign is a design prepared for single-pass true-3D P&R.
type MoLDesign = core.MoLDesign

// DieLayout is one separated per-die production layout.
type DieLayout = core.DieLayout

// EditMacroForMacroDie produces the Macro-3D view of a macro: _MD pin
// and obstruction layers at unchanged geometry, filler-sized
// substrate footprint.
func EditMacroForMacroDie(m *Cell, fillerW, fillerH float64) (*Cell, error) {
	return core.EditMacroForMacroDie(m, fillerW, fillerH)
}

// --- Flows ---

// FlowConfig selects benchmark and flow parameters.
type FlowConfig = flows.Config

// PPA is a flow outcome — one column of the paper's tables.
type PPA = flows.PPA

// FlowState exposes the implementation objects of a finished flow.
type FlowState = flows.State

// Run2D executes the baseline single-die flow.
func Run2D(cfg FlowConfig) (*PPA, *FlowState, error) { return flows.Run2D(cfg) }

// RunMacro3D executes the paper's flow.
func RunMacro3D(cfg FlowConfig) (*PPA, *FlowState, *MoLDesign, error) {
	return flows.RunMacro3D(cfg)
}

// RunS2D executes the Shrunk-2D baseline; balanced selects the BF S2D
// variant.
func RunS2D(cfg FlowConfig, balanced bool) (*PPA, *FlowState, error) {
	return flows.RunS2D(cfg, balanced)
}

// RunC2D executes the Compact-2D baseline.
func RunC2D(cfg FlowConfig) (*PPA, *FlowState, error) { return flows.RunC2D(cfg) }

// --- Hardened execution ---
//
// Every flow runs its stages inside an instrumented runner: panics are
// contained and surfaced as *StageError, cancellation is honoured at
// stage boundaries, and each attempt is recorded in the state's
// RunReport trace.

// StageError is the structured failure every flow returns: which flow
// and stage failed, under what seed and configuration, on which
// attempt, and the underlying cause (a *PanicError when the stage
// panicked). Retrieve it with errors.As.
type StageError = flows.StageError

// PanicError is the cause inside a StageError when a stage panicked;
// it carries the recovered value and the goroutine stack.
type PanicError = flows.PanicError

// RetryPolicy bounds per-stage retries; each retry re-runs the stage
// with a deterministically perturbed seed (see flows.PerturbSeed).
type RetryPolicy = flows.RetryPolicy

// StageRecord is one attempt of one stage in a flow trace.
type StageRecord = flows.StageRecord

// RunReport is the per-flow execution trace: every stage attempt with
// its seed, duration and outcome, plus whether the flow completed.
// Available as FlowState.Trace even when the flow fails part-way.
type RunReport = flows.RunReport

// Run2DCtx is Run2D with cancellation and per-stage deadlines.
func Run2DCtx(ctx context.Context, cfg FlowConfig) (*PPA, *FlowState, error) {
	return flows.Run2DCtx(ctx, cfg)
}

// RunMacro3DCtx is RunMacro3D with cancellation.
func RunMacro3DCtx(ctx context.Context, cfg FlowConfig) (*PPA, *FlowState, *MoLDesign, error) {
	return flows.RunMacro3DCtx(ctx, cfg)
}

// RunS2DCtx is RunS2D with cancellation.
func RunS2DCtx(ctx context.Context, cfg FlowConfig, balanced bool) (*PPA, *FlowState, error) {
	return flows.RunS2DCtx(ctx, cfg, balanced)
}

// RunC2DCtx is RunC2D with cancellation.
func RunC2DCtx(ctx context.Context, cfg FlowConfig) (*PPA, *FlowState, error) {
	return flows.RunC2DCtx(ctx, cfg)
}

// SeparateDies splits a signed-off Macro-3D design into its two
// production layouts (both carry the F2F bump locations).
func SeparateDies(md *MoLDesign, st *FlowState) (logic, macro *DieLayout, err error) {
	return core.Separate(md, st.Routes, st.DB)
}

// AbutTiles stitches nx×ny copies of a placed tile into one flat
// design (paper §V-1: aligned half-cycle pins connect by abutment).
func AbutTiles(t *Tile, die geom.Rect, nx, ny int) (*Design, geom.Rect, error) {
	return piton.Abut(t, die, nx, ny)
}

// ArrayReport is the outcome of flat re-verification of a tile array.
type ArrayReport = flows.ArrayReport

// VerifyTileArray composes a signed-off flow result into an nx×ny
// array (routes replicated verbatim, abutment nets stitched) and runs
// full STA — the executable form of the paper's arbitrary-core-count
// claim.
func VerifyTileArray(cfg FlowConfig, st *FlowState, t *Tech, nx, ny int) (*ArrayReport, error) {
	return flows.VerifyTileArray(cfg, st, t, nx, ny)
}

// --- Hierarchical hardened-macro flow (DESIGN.md §13) ---

// AbstractInfo is the provenance and signoff record a hardened macro
// abstract carries (source flow, internal minimum period, per-cycle
// energy).
type AbstractInfo = cell.AbstractInfo

// HardenResult is the outcome of hardening a sub-block into an
// abstract master.
type HardenResult = flows.HardenResult

// HierReport is the outcome of the hierarchical parent flow.
type HierReport = flows.HierReport

// Hardening flow kinds accepted by Harden and RunHierArray.
const (
	HardenFlowMacro3D = flows.HardenMacro3D
	HardenFlow2D      = flows.Harden2D
)

// Harden runs a sub-block flow to signoff and condenses it into an
// abstract master: LEF-style boundary pins with entry caps and
// boundary timing arcs, per-layer routing obstructions, and the
// AbstractInfo record. With FlowConfig.Cache set, the abstract is
// content-addressed so each distinct configuration hardens once.
func Harden(cfg FlowConfig, flow string) (*HardenResult, error) {
	return flows.Harden(cfg, flow)
}

// HardenCtx is Harden with run cancellation.
func HardenCtx(ctx context.Context, cfg FlowConfig, flow string) (*HardenResult, error) {
	return flows.HardenCtx(ctx, cfg, flow)
}

// RunHierArray hardens the configured tile (or loads it from the
// cache) and instantiates the abstract nx×ny by abutment, signing off
// only the parent level against the boundary timing model.
func RunHierArray(cfg FlowConfig, flow string, nx, ny int) (*HierReport, error) {
	return flows.RunHierArray(cfg, flow, nx, ny)
}

// RunHierArrayCtx is RunHierArray with run cancellation.
func RunHierArrayCtx(ctx context.Context, cfg FlowConfig, flow string, nx, ny int) (*HierReport, error) {
	return flows.RunHierArrayCtx(ctx, cfg, flow, nx, ny)
}

// InstantiateArray runs just the parent level on an already-hardened
// block.
func InstantiateArray(cfg FlowConfig, hr *HardenResult, nx, ny int) (*HierReport, error) {
	return flows.InstantiateArray(cfg, hr, nx, ny)
}

// ComposeAbstractArray stitches nx×ny instances of a hardened
// abstract into a parent netlist by abutment (the hierarchical analog
// of AbutTiles).
func ComposeAbstractArray(t *Tile, abs *Cell, die geom.Rect, nx, ny int) (*Design, geom.Rect, error) {
	return piton.ComposeAbstract(t, abs, die, nx, ny)
}

// RemapAbstractForMacroDie clones a hardened abstract with its pin
// and obstruction layers remapped onto the combined stack's _MD
// macro-die layers, so a block hardened on a plain logic stack can be
// re-instantiated on the macro die of a Macro-3D parent.
func RemapAbstractForMacroDie(m *Cell, combined *BEOL) (*Cell, error) {
	return core.RemapAbstractForMacroDie(m, combined)
}

// --- Experiments (the paper's tables) ---

// TableI is the small-cache flow comparison.
type TableI = report.TableI

// TableII is the in-depth 2D vs Macro-3D comparison.
type TableII = report.TableII

// TableIII is the M6–M4 heterogeneous-BEOL ablation.
type TableIII = report.TableIII

// IsoPerf is the §V-A iso-performance power comparison.
type IsoPerf = report.IsoPerf

// RunTableI reproduces Table I.
func RunTableI(seed uint64) (*TableI, error) { return report.RunTableI(seed) }

// RunTableII reproduces Table II.
func RunTableII(seed uint64) (*TableII, error) { return report.RunTableII(seed) }

// RunTableIII reproduces Table III.
func RunTableIII(seed uint64) (*TableIII, error) { return report.RunTableIII(seed) }

// RunIsoPerf reproduces the iso-performance comparison for one tile.
func RunIsoPerf(cfg TileConfig, seed uint64) (*IsoPerf, error) {
	return report.RunIsoPerf(cfg, seed)
}

// RunTableIWith is RunTableI with cancellation, a caller-supplied flow
// configuration, and keep-going mode: with keepGoing a failed column
// is skipped (rendering as "—") and the joined per-column errors are
// returned alongside the partial table. Cancellation always stops the
// table at the next stage boundary, preserving completed columns.
func RunTableIWith(ctx context.Context, cfg FlowConfig, keepGoing bool) (*TableI, error) {
	return report.RunTableIWith(ctx, cfg, keepGoing)
}

// RunTableIIWith is RunTableII with cancellation and keep-going mode.
func RunTableIIWith(ctx context.Context, cfg FlowConfig, keepGoing bool) (*TableII, error) {
	return report.RunTableIIWith(ctx, cfg, keepGoing)
}

// RunTableIIIWith is RunTableIII with cancellation and keep-going mode.
func RunTableIIIWith(ctx context.Context, cfg FlowConfig, keepGoing bool) (*TableIII, error) {
	return report.RunTableIIIWith(ctx, cfg, keepGoing)
}

// RunIsoPerfCtx is RunIsoPerf with cancellation.
func RunIsoPerfCtx(ctx context.Context, cfg TileConfig, seed uint64) (*IsoPerf, error) {
	return report.RunIsoPerfCtx(ctx, cfg, seed)
}

// BlockageSweep is the S2D blockage-resolution ablation.
type BlockageSweep = report.BlockageSweep

// PitchSweep is the F2F bump-pitch ablation.
type PitchSweep = report.PitchSweep

// RunBlockageSweep quantifies the S2D partial-blockage rasterization
// mechanism across resolutions (nil = default set).
func RunBlockageSweep(seed uint64, resolutions []float64) (*BlockageSweep, error) {
	return report.RunBlockageSweep(seed, resolutions)
}

// RunPitchSweep quantifies Macro-3D sensitivity to the F2F bump pitch
// (nil = default set).
func RunPitchSweep(seed uint64, pitches []float64) (*PitchSweep, error) {
	return report.RunPitchSweep(seed, pitches)
}

// HeteroTechSweep is the future-work extension: macro dies in
// different process nodes.
type HeteroTechSweep = report.HeteroTechSweep

// MacroProcess scales macro electrical properties relative to the
// logic node.
type MacroProcess = piton.MacroProcess

// RunHeteroTechSweep runs Macro-3D with same-node, low-leakage and
// fast-bin macro-die technologies.
func RunHeteroTechSweep(seed uint64) (*HeteroTechSweep, error) {
	return report.RunHeteroTechSweep(seed)
}

// RunBlockageSweepCtx is RunBlockageSweep with cancellation and
// keep-going mode (failed points leave nil gaps rendered as "—").
func RunBlockageSweepCtx(ctx context.Context, seed uint64, resolutions []float64, keepGoing bool) (*BlockageSweep, error) {
	return report.RunBlockageSweepCtx(ctx, seed, resolutions, keepGoing)
}

// RunPitchSweepCtx is RunPitchSweep with cancellation and keep-going.
func RunPitchSweepCtx(ctx context.Context, seed uint64, pitches []float64, keepGoing bool) (*PitchSweep, error) {
	return report.RunPitchSweepCtx(ctx, seed, pitches, keepGoing)
}

// RunHeteroTechSweepCtx is RunHeteroTechSweep with cancellation and
// keep-going.
func RunHeteroTechSweepCtx(ctx context.Context, seed uint64, keepGoing bool) (*HeteroTechSweep, error) {
	return report.RunHeteroTechSweepCtx(ctx, seed, keepGoing)
}

// RunIsoPerfWith is RunIsoPerfCtx taking a full flow configuration,
// so the stage cache and hardening knobs apply to both runs.
func RunIsoPerfWith(ctx context.Context, cfg FlowConfig) (*IsoPerf, error) {
	return report.RunIsoPerfWith(ctx, cfg)
}

// RunBlockageSweepWith is RunBlockageSweepCtx taking a full flow
// configuration.
func RunBlockageSweepWith(ctx context.Context, cfg FlowConfig, resolutions []float64, keepGoing bool) (*BlockageSweep, error) {
	return report.RunBlockageSweepWith(ctx, cfg, resolutions, keepGoing)
}

// RunPitchSweepWith is RunPitchSweepCtx taking a full flow
// configuration.
func RunPitchSweepWith(ctx context.Context, cfg FlowConfig, pitches []float64, keepGoing bool) (*PitchSweep, error) {
	return report.RunPitchSweepWith(ctx, cfg, pitches, keepGoing)
}

// RunHeteroTechSweepWith is RunHeteroTechSweepCtx taking a full flow
// configuration.
func RunHeteroTechSweepWith(ctx context.Context, cfg FlowConfig, keepGoing bool) (*HeteroTechSweep, error) {
	return report.RunHeteroTechSweepWith(ctx, cfg, keepGoing)
}

// --- Stage cache ---

// StageCache is the content-addressed on-disk stage cache: completed
// place/route/sign-off stages are snapshotted under a key derived from
// every input that can affect them, and a later run with the same
// inputs restores the snapshot instead of recomputing. Set it on
// FlowConfig.Cache; results are bit-identical with or without it.
type StageCache = stash.Store

// StageCacheStats is a point-in-time snapshot of cache traffic.
type StageCacheStats = stash.Stats

// OpenStageCache opens (creating if needed) a stage cache rooted at
// dir.
func OpenStageCache(dir string) (*StageCache, error) { return stash.Open(dir) }

// OpenStageCacheLimited opens a stage cache with a byte budget:
// existing snapshots are indexed least-recently-used and the store
// evicts cold entries to keep the directory under maxBytes. A
// maxBytes of 0 means unlimited (same as OpenStageCache).
func OpenStageCacheLimited(dir string, maxBytes int64) (*StageCache, error) {
	return stash.OpenLimited(dir, maxBytes)
}

// --- LEF/DEF interchange ---

// LEFContent is a parsed LEF stream (stack and/or library).
type LEFContent = lefdef.LEFContent

// DEFContent is a parsed DEF stream (design and die area).
type DEFContent = lefdef.DEFContent

// WriteLEF emits a technology stack and/or library in the repository's
// LEF dialect (either argument may be nil).
func WriteLEF(w io.Writer, b *BEOL, lib *Library) error { return lefdef.WriteLEF(w, b, lib) }

// ParseLEF reads the dialect WriteLEF emits.
func ParseLEF(r io.Reader) (*LEFContent, error) { return lefdef.ParseLEF(r) }

// WriteDEF emits a placed design.
func WriteDEF(w io.Writer, d *Design, die geom.Rect) error { return lefdef.WriteDEF(w, d, die) }

// ParseDEF reads the dialect WriteDEF emits against a library.
func ParseDEF(r io.Reader, lib *Library) (*DEFContent, error) { return lefdef.ParseDEF(r, lib) }

// RewriteMacroDieLayers performs the paper's scripted LEF edit on
// text: _MD layer suffixes inside MACRO pin/obstruction sections and
// the filler-size SIZE shrink.
func RewriteMacroDieLayers(lef string, fillerW, fillerH float64) string {
	return lefdef.RewriteMacroDieLayers(lef, fillerW, fillerH)
}

// WriteGDS exports one separated production die as a GDSII stream —
// outline, substrate objects, per-layer wires and the shared F2F
// bumps. Files open in standard viewers (KLayout).
func WriteGDS(w io.Writer, st *FlowState, part *DieLayout) error {
	return gds.ExportDie(w, st.Design, part, st.Routes, st.DB)
}

// --- Visualization ---

// VizOptions controls layout rendering.
type VizOptions = viz.Options

// LayoutSVG renders a placed design inside its die outline.
func LayoutSVG(d *Design, die geom.Rect, o VizOptions) string {
	return viz.LayoutSVG(d, die, o)
}

// CrossSectionSVG draws the Fig. 1-style stack cross view.
func CrossSectionSVG(logicMetals, macroMetals int, mol bool) string {
	return viz.CrossSectionSVG(logicMetals, macroMetals, mol)
}

// ASCIIDensity renders a terminal density map of a placed design.
func ASCIIDensity(d *Design, die geom.Rect, cols int, dieFilter *netlist.Die) string {
	return viz.ASCIIDensity(d, die, cols, dieFilter)
}

// TinyTile returns a reduced tile configuration for fast tests and
// demos (same structure as the paper tiles at a fraction of the size).
func TinyTile() TileConfig { return piton.Tiny() }

// --- Observability ---

// ObsRecorder is the per-run observability hub: hierarchical spans
// (flow → stage → engine phase), typed per-run metrics, and the JSONL
// event stream. Attach one to FlowConfig.Obs to record a run; a nil
// recorder (the default) disables observability with zero overhead
// and byte-identical results.
type ObsRecorder = obs.Recorder

// ObsServer is a running observability HTTP endpoint (Prometheus
// /metrics, JSON snapshot, expvar, pprof) created by
// ObsRecorder.Serve.
type ObsServer = obs.Server

// NewObsRecorder returns an enabled recorder with an empty metric
// registry.
func NewObsRecorder() *ObsRecorder { return obs.New() }

// --- Execution tracing ---

// ExecTracer records the engines' per-worker execution timeline —
// task-level slices with phase, step and stash-attribution args.
// Attach one to FlowConfig.Trace to trace a run; a nil tracer (the
// default) disables tracing with near-zero overhead and byte-identical
// results. Export with WriteChrome (Perfetto / chrome://tracing) and
// analyze with AnalyzeExecTrace.
type ExecTracer = trace.Tracer

// ExecTraceReport is the analyzer's verdict on a recorded timeline:
// per-phase worker occupancy, serial fraction, critical path and
// Amdahl speedup ceilings, plus the top serial segments by wall-clock
// share. Render with its Format method.
type ExecTraceReport = trace.Report

// NewExecTracer returns an enabled execution tracer.
func NewExecTracer() *ExecTracer { return trace.New() }

// AnalyzeExecTrace computes the parallelism report of a recorded
// timeline.
func AnalyzeExecTrace(t *ExecTracer) *ExecTraceReport { return trace.Analyze(t) }

// ReadExecTrace parses a Chrome trace-event JSON file previously
// written by ExecTracer.WriteChrome back into a tracer for analysis.
func ReadExecTrace(r io.Reader) (*ExecTracer, error) { return trace.ReadChrome(r) }
