module macro3d

go 1.22
