// Memory-on-logic: the paper's headline experiment (Table II).
//
// Runs the full baseline 2D flow and the Macro-3D flow on the
// OpenPiton-like tile and prints the in-depth comparison: maximum
// clock frequency, energy per cycle, footprint, wirelength, F2F bump
// count, capacitances and clock-tree depth.
//
// Run with: go run ./examples/memory_on_logic [-large] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"macro3d"
)

func main() {
	large := flag.Bool("large", false, "use the large-cache tile (1 MB L3)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	pc := macro3d.SmallCache()
	if *large {
		pc = macro3d.LargeCache()
	}
	cfg := macro3d.FlowConfig{Piton: pc, Seed: *seed}

	fmt.Printf("=== %s: baseline 2D flow (macros ring the periphery) ===\n", pc.Name)
	p2d, _, err := macro3d.Run2D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p2d)

	fmt.Printf("\n=== %s: Macro-3D flow (single-pass true 3D P&R) ===\n", pc.Name)
	p3d, st, mol, err := macro3d.RunMacro3D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p3d)

	logicDie, macroDie, err := macro3d.SeparateDies(mol, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("separated layouts: logic die %d cells / macro die %d macros, %d shared bumps\n",
		logicDie.StdCells, macroDie.Macros, len(logicDie.Bumps))

	fmt.Println("\n=== comparison (paper Table II row deltas) ===")
	rows := []struct {
		name   string
		v2, v3 float64
		unit   string
	}{
		{"fclk", p2d.FclkMHz, p3d.FclkMHz, "MHz"},
		{"Emean", p2d.EmeanFJ, p3d.EmeanFJ, "fJ/cycle"},
		{"Afootprint", p2d.FootprintMM2, p3d.FootprintMM2, "mm²"},
		{"Alogic-cells", p2d.LogicCellAreaMM2, p3d.LogicCellAreaMM2, "mm²"},
		{"total wirelength", p2d.TotalWLm, p3d.TotalWLm, "m"},
		{"Cpin,total", p2d.CpinNF, p3d.CpinNF, "nF"},
		{"Cwire,total", p2d.CwireNF, p3d.CwireNF, "nF"},
		{"clk-tree depth", float64(p2d.ClkDepth), float64(p3d.ClkDepth), ""},
	}
	for _, r := range rows {
		fmt.Printf("  %-18s %10.2f → %10.2f %-9s (%+.1f%%)\n",
			r.name, r.v2, r.v3, r.unit, 100*(r.v3/r.v2-1))
	}
	fmt.Printf("  %-18s %10d → %10d\n", "F2F bumps", p2d.F2FBumps, p3d.F2FBumps)
}
