// Sensor-on-logic: the paper's second heterogeneous use case (§I–II).
//
// A 16-sensor imaging-style SoC is built from analog sensor macros
// (which only use three metal layers — analog blocks do not benefit
// from aggressive nodes) and a digital readout pipeline. The Macro-3D
// flow stacks the sensors face-to-face above the logic with a
// heterogeneous BEOL: six logic-die metals against four macro-die
// metals.
//
// Run with: go run ./examples/sensor_on_logic
package main

import (
	"fmt"
	"log"

	"macro3d"
)

func main() {
	gen := func() (*macro3d.Tile, error) {
		return macro3d.GenerateSensorSoC(macro3d.DefaultSensorSoC())
	}

	tile, err := gen()
	if err != nil {
		log.Fatal(err)
	}
	st := tile.Design.ComputeStats()
	fmt.Printf("sensor SoC: %d sensors, %d instances, logic %.3f mm², sensor area %.3f mm²\n",
		st.NumMacros, st.NumInstances, st.StdCellArea/1e6, st.MacroArea/1e6)

	// Baseline: everything on one die.
	cfg := macro3d.FlowConfig{Generator: gen, Seed: 7}
	p2d, _, err := macro3d.Run2D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2D:      ", p2d)

	// Macro-3D with a heterogeneous stack: the sensor die needs only
	// four metals (its macros route on M1–M3), cutting mask cost.
	cfg.MacroDieMetals = 4
	p3d, _, mol, err := macro3d.RunMacro3D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Macro-3D:", p3d)
	fmt.Printf("  combined stack: %v\n", mol.Combined)

	fmt.Printf("\nsensor-on-logic gains: fclk %+.1f%%, footprint %+.1f%%, wirelength %+.1f%%\n",
		100*(p3d.FclkMHz/p2d.FclkMHz-1),
		100*(p3d.FootprintMM2/p2d.FootprintMM2-1),
		100*(p3d.TotalWLm/p2d.TotalWLm-1))
	fmt.Printf("metal area: 2D %.2f mm² vs heterogeneous 3D %.2f mm²\n",
		p2d.MetalAreaMM2, p3d.MetalAreaMM2)
}
