// Quickstart: the Macro-3D methodology in five minutes.
//
// This example walks the core transformations on real objects without
// running a full flow (see examples/memory_on_logic for that):
//
//  1. compile an SRAM macro,
//  2. edit it for the macro die (the Macro-3D abstract edit),
//  3. build the combined two-die BEOL a standard 2D engine routes on,
//  4. generate the OpenPiton-like benchmark tile and show why MoL
//     stacking applies (macros dominate the substrate).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"macro3d"
)

func main() {
	// 1. A 32 kB SRAM macro from the synthetic memory compiler.
	sram, err := macro3d.NewSRAM(macro3d.SRAMSpec{Name: "sram_32k", Words: 8192, Bits: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %.0f×%.0f µm, %d pins on %s, clk→q %.0f ps\n",
		sram.Name, sram.Width, sram.Height, len(sram.Pins), sram.Pins[0].Layer, sram.ClkQ)

	// 2. The Macro-3D edit: pins and obstructions move to the _MD
	// layers at unchanged (x, y); the substrate footprint shrinks to a
	// filler cell so the macro consumes no logic-die placement area.
	edited, err := macro3d.EditMacroForMacroDie(sram, 0.19, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edited  %s: footprint %.2f×%.2f µm, pins now on %s (same offsets)\n",
		edited.Name, edited.Width, edited.Height, edited.Pins[0].Layer)

	// 3. The combined BEOL: logic metals, the F2F bonding via, then
	// the macro die's metals in flipped traversal order.
	logic, err := macro3d.NewBEOL28("logic", 6)
	if err != nil {
		log.Fatal(err)
	}
	macroStack, err := macro3d.NewBEOL28("macro", 4)
	if err != nil {
		log.Fatal(err)
	}
	combined, err := macro3d.CombineBEOL(logic, macroStack, macro3d.DefaultF2F())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined stack: %v\n", combined)
	fmt.Printf("  (%d logic + %d macro-die layers; F2F via after layer %d)\n",
		combined.LogicDieLayers(), combined.MacroDieLayers(), combined.F2FViaIndex()+1)

	// 4. The benchmark: even the small-cache tile is macro-dominated,
	// which is the regime where MoL stacking (and Macro-3D) wins.
	tile, err := macro3d.GenerateTile(macro3d.SmallCache())
	if err != nil {
		log.Fatal(err)
	}
	st := tile.Design.ComputeStats()
	fmt.Printf("benchmark %s: %d instances, %d nets\n",
		tile.Design.Name, st.NumInstances, st.NumNets)
	fmt.Printf("  logic %.3f mm², macros %.3f mm² → macros are %.0f%% of cell area\n",
		st.StdCellArea/1e6, st.MacroArea/1e6, 100*st.MacroArea/(st.StdCellArea+st.MacroArea))
	fmt.Println("next: go run ./examples/memory_on_logic  (full 2D vs Macro-3D flows)")
}
