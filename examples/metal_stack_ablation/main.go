// Metal-stack ablation: the paper's Table III experiment.
//
// Macro-3D designs route most signals in the logic die; the macro die's
// upper metals mainly provide pin access. Removing two macro-die metal
// layers (M6–M6 → M6–M4) therefore barely affects performance while
// cutting metal area ~17 % and reducing the F2F bump count — the
// heterogeneous-BEOL manufacturing saving the paper highlights.
//
// Run with: go run ./examples/metal_stack_ablation [-large] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"macro3d"
)

func main() {
	large := flag.Bool("large", false, "use the large-cache tile")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	pc := macro3d.SmallCache()
	if *large {
		pc = macro3d.LargeCache()
	}

	run := func(metals int) *macro3d.PPA {
		cfg := macro3d.FlowConfig{Piton: pc, Seed: *seed, MacroDieMetals: metals}
		p, _, _, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	m66 := run(6)
	m64 := run(4)

	fmt.Printf("Macro-3D %s, macro-die metal ablation (Table III)\n", pc.Name)
	fmt.Printf("%-18s %12s %12s %10s\n", "", "M6–M6", "M6–M4", "delta")
	row := func(name string, a, b float64, f string) {
		fmt.Printf("%-18s %12s %12s %9.1f%%\n", name,
			fmt.Sprintf(f, a), fmt.Sprintf(f, b), 100*(b/a-1))
	}
	row("fclk [MHz]", m66.FclkMHz, m64.FclkMHz, "%.0f")
	row("Emean [fJ/cycle]", m66.EmeanFJ, m64.EmeanFJ, "%.1f")
	row("Ametal [mm²]", m66.MetalAreaMM2, m64.MetalAreaMM2, "%.2f")
	row("F2F bumps", float64(m66.F2FBumps), float64(m64.F2FBumps), "%.0f")
	fmt.Println("\nexpected shape (paper): fclk ±2 %, Ametal −16.7 %, bumps −18 to −24 %")
}
