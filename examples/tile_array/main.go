// Tile array: the paper's §V-1 methodology made executable, flat and
// hierarchical.
//
// OpenPiton systems are built by abutting tile instances: every
// inter-tile pin is placed on the die edge, aligned with its partner
// pin on the facing edge, and constrained to half a clock cycle — so a
// tile signed off once composes into arrays of arbitrary core count
// with no additional routing and no new timing closure.
//
// Two compositions of the same tile are demonstrated:
//
//   - flat: run the Macro-3D flow on one tile, stitch an N×N array by
//     replicating layout and routing verbatim, then re-verify the flat
//     array with full STA over every cell.
//   - hier: harden the tile into a first-class abstract (boundary
//     pins, per-layer routing obstructions — including the macro-die
//     _MD layers — and a boundary timing model), then instantiate N²
//     opaque abstracts in a parent flow that routes, builds a clock
//     tree, and signs off against the abstracts' boundary arcs only.
//
// The hierarchical parent sees N² instances instead of N²·|cells|
// instances, which is where the wall-clock win comes from; with a
// -cache dir the hardening itself is also reused across runs.
//
// Run with: go run ./examples/tile_array [-n 4] [-mode both] [-cache DIR] [-gds out/]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"macro3d"
)

func main() {
	n := flag.Int("n", 4, "array dimension (N×N tiles)")
	mode := flag.String("mode", "both", "composition to run: flat, hier or both")
	cacheDir := flag.String("cache", "", "content-addressed cache directory: reuse hardened abstracts across runs")
	gdsDir := flag.String("gds", "", "also write per-die GDSII streams to this directory")
	flag.Parse()

	cfg := macro3d.FlowConfig{Piton: macro3d.TinyTile(), Seed: 5}
	if *cacheDir != "" {
		cache, err := macro3d.OpenStageCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Cache = cache
	}

	var flatElapsed, hierElapsed time.Duration

	if *mode == "flat" || *mode == "both" {
		fmt.Println("flat: signing off one tile with Macro-3D…")
		start := time.Now()
		ppa, st, mol, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tile: %.0f MHz (period %.0f ps), %d F2F bumps\n",
			ppa.FclkMHz, ppa.MinPeriodPs, ppa.F2FBumps)

		t, err := macro3d.New28(6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flat: composing a %d×%d array by abutment (routes replicated verbatim)…\n", *n, *n)
		rep, err := macro3d.VerifyTileArray(cfg, st, t, *n, *n)
		if err != nil {
			log.Fatal(err)
		}
		flatElapsed = time.Since(start)
		fmt.Printf("  array: %d instances, %d stitched inter-tile nets, %d bumps\n",
			len(rep.Design.Instances), rep.StitchedNets, rep.F2FBumps)
		fmt.Printf("  timing: tile %.0f ps vs array %.0f ps — closes at tile frequency: %v (%v)\n",
			rep.TilePeriod, rep.ArrayPeriod, rep.ClosesAtTile, flatElapsed.Round(time.Millisecond))
		if !rep.ClosesAtTile {
			log.Fatal("flat array failed timing — §V-1 invariant broken")
		}

		if *gdsDir != "" {
			logicDie, macroDie, err := macro3d.SeparateDies(mol, st)
			if err != nil {
				log.Fatal(err)
			}
			for _, part := range []*macro3d.DieLayout{logicDie, macroDie} {
				path := filepath.Join(*gdsDir, part.Name+".gds")
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := macro3d.WriteGDS(f, st, part); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Println("  wrote", path)
			}
		}
	}

	if *mode == "hier" || *mode == "both" {
		fmt.Println("hier: hardening the tile into a first-class abstract…")
		start := time.Now()
		cfg.Verify = true
		rep, err := macro3d.RunHierArray(cfg, macro3d.HardenFlowMacro3D, *n, *n)
		if err != nil {
			log.Fatal(err)
		}
		hierElapsed = time.Since(start)
		abs := rep.Abstract
		mdObs := 0
		for _, o := range abs.Obstructions {
			if strings.HasSuffix(o.Layer, "_MD") {
				mdObs++
			}
		}
		src := "hardened fresh"
		if rep.HardenCacheHit {
			src = "from cache"
		}
		fmt.Printf("  abstract %s (%s in %v): %d pins, %d obstructions (%d on _MD layers)\n",
			abs.Name, src, rep.HardenElapsed.Round(time.Millisecond),
			len(abs.Pins), len(abs.Obstructions), mdObs)
		fmt.Printf("hier: instantiating %d×%d abstracts in the parent flow…\n", rep.Nx, rep.Ny)
		fmt.Printf("  array: %d abstract instances, %d stitched inter-tile nets, %d bumps\n",
			len(rep.Design.Instances), rep.StitchedNets, rep.F2FBumps)
		fmt.Printf("  timing: tile %.0f ps vs array %.0f ps — closes at tile frequency: %v (%v)\n",
			rep.TilePeriodPs, rep.ArrayPeriodPs, rep.ClosesAtTile, hierElapsed.Round(time.Millisecond))
		fmt.Printf("  power: %.1f fJ/cycle, %.1f µW (leakage %.1f µW) — verification clean\n",
			rep.EnergyPerCycleFJ, rep.PowerUW, rep.LeakageUW)
		if !rep.ClosesAtTile {
			log.Fatal("hierarchical array failed timing — boundary model broken")
		}
	}

	if *mode == "both" && hierElapsed > 0 {
		fmt.Printf("hierarchical composition was %.1f× faster than flat re-verification\n",
			float64(flatElapsed)/float64(hierElapsed))
	}
	fmt.Println("done: one sign-off, arbitrary core counts (paper §V-1).")
}
