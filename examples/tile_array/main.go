// Tile array: the paper's §V-1 methodology made executable.
//
// OpenPiton systems are built by abutting tile instances: every
// inter-tile pin is placed on the die edge, aligned with its partner
// pin on the facing edge, and constrained to half a clock cycle — so a
// tile signed off once composes into arrays of arbitrary core count
// with no additional routing and no new timing closure.
//
// This example runs the Macro-3D flow on one tile, stitches an N×N
// array (replicating layout and routing verbatim), re-verifies the
// flat array with full STA, and writes the separated production dies
// as GDSII.
//
// Run with: go run ./examples/tile_array [-n 2] [-gds out/]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"macro3d"
)

func main() {
	n := flag.Int("n", 2, "array dimension (N×N tiles)")
	gdsDir := flag.String("gds", "", "also write per-die GDSII streams to this directory")
	flag.Parse()

	cfg := macro3d.FlowConfig{Piton: macro3d.TinyTile(), Seed: 5}
	fmt.Println("signing off one tile with Macro-3D…")
	ppa, st, mol, err := macro3d.RunMacro3D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tile: %.0f MHz (period %.0f ps), %d F2F bumps\n",
		ppa.FclkMHz, ppa.MinPeriodPs, ppa.F2FBumps)

	t, err := macro3d.New28(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composing a %d×%d array by abutment (routes replicated verbatim)…\n", *n, *n)
	rep, err := macro3d.VerifyTileArray(cfg, st, t, *n, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  array: %d instances, %d stitched inter-tile nets, %d bumps\n",
		len(rep.Design.Instances), rep.StitchedNets, rep.F2FBumps)
	fmt.Printf("  timing: tile %.0f ps vs array %.0f ps — closes at tile frequency: %v\n",
		rep.TilePeriod, rep.ArrayPeriod, rep.ClosesAtTile)
	if !rep.ClosesAtTile {
		log.Fatal("array failed timing — §V-1 invariant broken")
	}

	if *gdsDir != "" {
		logicDie, macroDie, err := macro3d.SeparateDies(mol, st)
		if err != nil {
			log.Fatal(err)
		}
		for _, part := range []*macro3d.DieLayout{logicDie, macroDie} {
			path := filepath.Join(*gdsDir, part.Name+".gds")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := macro3d.WriteGDS(f, st, part); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Println("  wrote", path)
		}
	}
	fmt.Println("done: one sign-off, arbitrary core counts (paper §V-1).")
}
